"""Fixture suite for the invariant lint rules (``tools/invariants``).

Each rule family gets at least one passing and one failing snippet, the
suppression / baseline workflows get round-trips, and — the tier-1
gate — the real repository must come back clean, exactly as the CI
``invariants`` lane runs it.
"""

import ast
import json
import subprocess
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT))

from tools.invariants import (determinism, durability, locks,  # noqa: E402
                              raises, timeimports)
from tools.invariants.common import (Module, apply_suppressions,  # noqa: E402
                                     comment_map, suppression_findings)


def make_module(source: str, rel: str = "src/repro/serve/mod.py") -> Module:
    source = textwrap.dedent(source)
    return Module(path=REPO_ROOT / rel, rel=rel, text=source,
                  tree=ast.parse(source), comments=comment_map(source))


def run_cli(*argv, cwd=REPO_ROOT) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "tools.invariants", *argv],
        capture_output=True, text=True, cwd=cwd)


# ---------------------------------------------------------------------------
# INV001 — lock discipline
# ---------------------------------------------------------------------------
LOCKED_CLASS = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}
            self.capacity = 8   # immutable config: never guarded

        def put(self, key, value):
            with self._lock:
                self._items[key] = value

        def get(self, key):
            with self._lock:
                return self._items.get(key)

        # invariant: holds-lock
        def _evict_one(self):
            self._items.popitem()

        def size_hint(self):
            return self.capacity
"""


def test_lock_rule_accepts_disciplined_class():
    assert locks.check_module(make_module(LOCKED_CLASS)) == []


def test_lock_rule_flags_unlocked_read_and_write():
    module = make_module("""
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = {}

            def put(self, key, value):
                with self._lock:
                    self._items[key] = value

            def peek(self, key):
                return self._items.get(key)      # read, no lock

            def drop(self, key):
                self._items.pop(key, None)        # write, no lock
    """)
    findings = locks.check_module(module)
    assert len(findings) == 2
    assert {f.symbol for f in findings} == {"Store.peek", "Store.drop"}
    assert all(f.code == "INV001" and "_items" in f.message
               for f in findings)


def test_lock_rule_ignores_unguarded_config_attributes():
    # capacity is read without the lock in LOCKED_CLASS and that is
    # fine: it is never mutated after __init__, so it is not guarded.
    module = make_module(LOCKED_CLASS)
    assert locks.guarded_attributes(module) == {"Store": {"_items"}}


def test_lock_rule_requires_the_annotation_not_just_a_docstring():
    module = make_module("""
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = {}

            def put(self, key, value):
                with self._lock:
                    self._items[key] = value
                    self._evict()

            def _evict(self):
                \"\"\"Drop one item (lock held).\"\"\"
                self._items.popitem()
    """)
    findings = locks.check_module(module)
    assert [f.symbol for f in findings] == ["Store._evict"]


# ---------------------------------------------------------------------------
# INV002 — errors as values
# ---------------------------------------------------------------------------
MINI_PROTOCOL = """
    class ServiceError:
        code = "internal_error"

    class UnknownStudent(ServiceError):
        code = "unknown_student"

    class MalformedQuery(ServiceError):
        code = "malformed_query"

    class UnsupportedVersion(MalformedQuery):
        code = "unsupported_version"
"""


def write_protocol(tmp_path: Path) -> Path:
    path = tmp_path / "protocol.py"
    path.write_text(textwrap.dedent(MINI_PROTOCOL))
    return path


def test_raise_rule_resolves_transitive_taxonomy(tmp_path):
    taxonomy = raises.taxonomy_from(write_protocol(tmp_path))
    assert taxonomy == {"ServiceError", "UnknownStudent",
                        "MalformedQuery", "UnsupportedVersion"}


def test_raise_rule_accepts_errors_returned_as_values(tmp_path):
    taxonomy = raises.taxonomy_from(write_protocol(tmp_path))
    module = make_module("""
        def handle(query):
            if query is None:
                return MalformedQuery("empty")
            if not isinstance(query, dict):
                raise ValueError("programmer error is fine")
            return {"ok": True}
    """)
    assert raises.check_module(module, taxonomy) == []


def test_raise_rule_flags_raised_taxonomy_errors(tmp_path):
    taxonomy = raises.taxonomy_from(write_protocol(tmp_path))
    module = make_module("""
        def handle(query):
            raise UnknownStudent("who?")

        class Gateway:
            def route(self, request):
                raise protocol.UnsupportedVersion("v99")
    """)
    findings = raises.check_module(module, taxonomy)
    assert [f.symbol for f in findings] == ["handle", "Gateway.route"]
    assert all(f.code == "INV002" for f in findings)


# ---------------------------------------------------------------------------
# INV003 — determinism
# ---------------------------------------------------------------------------
def test_determinism_rule_accepts_derived_generators():
    module = make_module("""
        import time
        import numpy as np
        from repro.utils.seeding import derive_rng

        def shuffle_batch(rows, seed, round_index):
            rng = derive_rng(seed, "online", round_index)
            rng.shuffle(rows)
            return rows

        def seeded(config):
            return np.random.default_rng(config.seed)

        def elapsed(start):
            return time.monotonic() - start
    """, rel="src/repro/online/mod.py")
    assert determinism.check_module(module) == []


def test_determinism_rule_flags_wall_clock_and_global_rng():
    module = make_module("""
        import random
        import time
        import numpy as np
        from datetime import datetime

        def bad_shuffle(rows):
            random.shuffle(rows)
            np.random.shuffle(rows)
            return rows

        def bad_stamp():
            return time.time(), datetime.now()

        def bad_entropy():
            return np.random.default_rng()
    """, rel="src/repro/core/mod.py")
    findings = determinism.check_module(module)
    messages = " | ".join(f.message for f in findings)
    assert any("imports stdlib 'random'" in f.message for f in findings)
    assert "np.random.shuffle" in messages
    assert "time.time()" in messages
    assert "datetime.now()" in messages
    assert "without a seed" in messages
    assert all(f.code == "INV003" for f in findings)


# ---------------------------------------------------------------------------
# INV004 — durability
# ---------------------------------------------------------------------------
def test_durability_rule_accepts_the_snapshot_write_protocol():
    module = make_module("""
        import os

        def write_durably(directory, final, payload):
            tmp = final.with_suffix(".tmp")
            with open(tmp, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
            fsync_directory(directory)
            for old in stale(directory):
                old.unlink()
            fsync_directory(directory)
    """, rel="src/repro/cluster/snapshot.py")
    assert durability.check_module(module) == []


def test_durability_rule_flags_each_broken_pattern():
    module = make_module("""
        import os

        def write_lazily(path, payload):
            path.write_bytes(payload)

        def rename_blindly(tmp, final, directory):
            os.replace(tmp, final)

        def flush_only(handle):
            handle.flush()

        def delete_softly(path):
            path.unlink()
    """, rel="src/repro/cluster/wal.py")
    findings = durability.check_module(module)
    by_symbol = {f.symbol: f.message for f in findings}
    assert "write-then-fsync" in by_symbol["write_lazily"]
    assert "flush alone" in by_symbol["flush_only"]
    assert "power loss" in by_symbol["delete_softly"]
    rename_messages = [f.message for f in findings
                       if f.symbol == "rename_blindly"]
    assert any("fsync-before-rename" in m for m in rename_messages)
    assert any("directory entry" in m for m in rename_messages)


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------
def test_suppression_with_reason_silences_the_named_code():
    module = make_module("""
        import time

        def jitter():
            return time.time()  # invariants: disable=INV003 -- bench jitter
    """, rel="src/repro/core/mod.py")
    findings = determinism.check_module(module)
    findings.extend(suppression_findings(module))
    kept, suppressed = apply_suppressions(module, findings)
    assert kept == []
    assert [f.code for f in suppressed] == ["INV003"]


def test_suppression_without_reason_is_itself_a_finding():
    module = make_module("""
        import time

        def jitter():
            return time.time()  # invariants: disable=INV003
    """, rel="src/repro/core/mod.py")
    findings = determinism.check_module(module)
    findings.extend(suppression_findings(module))
    kept, suppressed = apply_suppressions(module, findings)
    codes = sorted(f.code for f in kept)
    assert codes == ["INV000", "INV003"]   # reasonless: nothing silenced
    assert suppressed == []


def test_suppression_only_covers_the_codes_it_names():
    module = make_module("""
        import time

        def jitter():
            return time.time()  # invariants: disable=INV001 -- wrong code
    """, rel="src/repro/core/mod.py")
    findings = determinism.check_module(module)
    kept, suppressed = apply_suppressions(module, findings)
    assert [f.code for f in kept] == ["INV003"]
    assert suppressed == []


# ---------------------------------------------------------------------------
# INV005 — the obs facade is the only serving clock
# ---------------------------------------------------------------------------
def test_timeimport_rule_accepts_the_obs_facade():
    module = make_module("""
        from repro import obs

        def deadline(seconds):
            return obs.clock() + seconds
    """)
    assert timeimports.check_module(module) == []


def test_timeimport_rule_flags_each_banned_form():
    module = make_module("""
        import time
        import datetime as dt
        from time import perf_counter

        def stamp():
            import time.monotonic_ns
            return perf_counter()
    """)
    findings = timeimports.check_module(module)
    assert [f.code for f in findings] == ["INV005"] * 4
    assert {f.line for f in findings} == {2, 3, 4, 7}
    assert findings[-1].symbol == "stamp"   # nested import attributed


def test_timeimport_rule_ignores_lookalike_modules():
    module = make_module("""
        import timeit
        from datetime_utils import parse
        from .timer import Timer
    """)
    assert timeimports.check_module(module) == []


def test_timeimport_rule_suppression():
    module = make_module("""
        import time  # invariants: disable=INV005 -- legacy shim
    """)
    findings = timeimports.check_module(module)
    findings.extend(suppression_findings(module))
    kept, suppressed = apply_suppressions(module, findings)
    assert kept == []
    assert [f.code for f in suppressed] == ["INV005"]


def test_timeimport_scope_excludes_obs_but_covers_serving():
    """The runner's INV005 scope bans ``time`` from serve/cluster while
    leaving ``repro.obs`` (the sanctioned importer) alone."""
    from tools.invariants.runner import RULE_SCOPES
    scope = RULE_SCOPES[timeimports.CODE]
    assert "src/repro/serve/*.py" in scope
    assert "src/repro/cluster/*.py" in scope
    assert not any("obs" in pattern for pattern in scope)
    # obs still answers to the lock rule: its registry is shared state.
    assert "src/repro/obs/*.py" in RULE_SCOPES[locks.CODE]


# ---------------------------------------------------------------------------
# Runner: scoping, baseline round-trip, real repository
# ---------------------------------------------------------------------------
def write_tree(root: Path) -> None:
    """A minimal repo-shaped tree with one violation per rule family."""
    serve = root / "src" / "repro" / "serve"
    cluster = root / "src" / "repro" / "cluster"
    core = root / "src" / "repro" / "core"
    online = root / "src" / "repro" / "online"
    for directory in (serve, cluster, core, online):
        directory.mkdir(parents=True, exist_ok=True)
    (serve / "protocol.py").write_text(textwrap.dedent(MINI_PROTOCOL))
    (serve / "service.py").write_text(textwrap.dedent("""
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()
                self._pending = []

            def submit(self, item):
                with self._lock:
                    self._pending.append(item)

            def steal(self):
                return self._pending.pop()

            def reject(self):
                raise MalformedQuery("nope")
    """))
    (core / "trainer.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n")
    (cluster / "wal.py").write_text(
        "def persist(path, payload):\n"
        "    path.write_bytes(payload)\n")
    (cluster / "router.py").write_text(
        "import time\n\n\ndef deadline():\n"
        "    return time.monotonic() + 1.0\n")


def test_runner_exits_nonzero_per_failing_rule(tmp_path):
    write_tree(tmp_path)
    for rule in ("INV001", "INV002", "INV003", "INV004", "INV005"):
        result = run_cli("--root", str(tmp_path), "--rules", rule,
                         "--format", "json")
        assert result.returncode == 1, (rule, result.stdout)
        payload = json.loads(result.stdout)
        assert {f["code"] for f in payload["findings"]} == {rule}


def test_runner_baseline_round_trip(tmp_path):
    write_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    first = run_cli("--root", str(tmp_path), "--baseline", str(baseline))
    assert first.returncode == 1

    wrote = run_cli("--root", str(tmp_path), "--baseline", str(baseline),
                    "--write-baseline")
    assert wrote.returncode == 0
    entries = json.loads(baseline.read_text())
    assert entries and all(set(e) == {"code", "path", "symbol", "message"}
                           for e in entries)

    clean = run_cli("--root", str(tmp_path), "--baseline", str(baseline))
    assert clean.returncode == 0, clean.stdout
    assert f"{len(entries)} baselined" in clean.stdout

    # A brand-new violation is NOT grandfathered by the old baseline.
    (tmp_path / "src" / "repro" / "core" / "fresh.py").write_text(
        "import random\n")
    regressed = run_cli("--root", str(tmp_path),
                        "--baseline", str(baseline))
    assert regressed.returncode == 1
    assert "fresh.py" in regressed.stdout


def test_runner_rejects_unknown_rule_codes(tmp_path):
    write_tree(tmp_path)
    result = run_cli("--root", str(tmp_path), "--rules", "INV999")
    assert result.returncode == 2
    assert "unknown rule" in result.stderr


def test_repository_satisfies_all_invariants():
    """The tier-1 gate: ``python -m tools.invariants`` on this checkout
    must be clean — the same command the CI invariants lane runs."""
    result = run_cli()
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 finding(s)" in result.stdout
