"""Negative-path coverage for ``tools/check_docs.py``.

``tests/test_docs.py`` proves the checker passes on this repository and
fails on vanished symbols/files/links; this suite covers the parts it
does not: the in-process check functions themselves and the
protocol-surface cross-check against ``docs/API.md`` (class mentions,
error-table codes and HTTP statuses, both drift directions).
"""

import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402

PROTOCOL = """
    class ScoreQuery:
        TYPE = "score"

    class RecordEvent:
        TYPE = "record"

    class BatchEnvelope:
        TYPE = "batch"

    class ScoreReply:
        TYPE = "score_reply"

    class ServiceError:
        code = "internal_error"
        http_status = 500

    class UnknownStudent(ServiceError):
        code = "unknown_student"
        http_status = 404

    class InternalError(ServiceError):
        pass

    QUERY_TYPES = {cls.TYPE: cls for cls in (ScoreQuery, RecordEvent)}
    REPLY_TYPES = {cls.TYPE: cls for cls in (ScoreReply,)}
    ERROR_TYPES = {cls.code: cls for cls in (UnknownStudent,
                                             InternalError)}
"""

API_DOC = """
    # API

    Queries: `ScoreQuery`, `RecordEvent`, `BatchEnvelope`.
    Replies: `ScoreReply`.

    | Class | `code` | HTTP | Raised when |
    | --- | --- | --- | --- |
    | `UnknownStudent` | `unknown_student` | 404 | no history |
    | `InternalError` | `internal_error` | 500 | catch-all |
"""


def write_tree(root: Path, protocol: str = PROTOCOL,
               api: str = API_DOC) -> Path:
    module = root / "src" / "repro" / "serve" / "protocol.py"
    module.parent.mkdir(parents=True)
    module.write_text(textwrap.dedent(protocol))
    doc = root / "docs" / "API.md"
    doc.parent.mkdir(parents=True)
    doc.write_text(textwrap.dedent(api))
    return root


def surface_failures(root: Path) -> list:
    failures: list = []
    check_docs.check_protocol_surface(root, failures)
    return failures


def test_protocol_surface_extraction(tmp_path):
    write_tree(tmp_path)
    surface = check_docs.protocol_surface(
        tmp_path / "src" / "repro" / "serve" / "protocol.py")
    assert surface["queries"] == ["BatchEnvelope", "RecordEvent",
                                  "ScoreQuery"]
    assert surface["replies"] == ["ScoreReply"]
    # InternalError inherits code/status from the ServiceError base.
    assert surface["errors"] == {
        "UnknownStudent": ("unknown_student", 404),
        "InternalError": ("internal_error", 500)}


def test_protocol_surface_accepts_a_synced_doc(tmp_path):
    write_tree(tmp_path)
    assert surface_failures(tmp_path) == []


def test_protocol_surface_skips_trees_without_the_protocol(tmp_path):
    assert surface_failures(tmp_path) == []


def test_protocol_surface_flags_an_undocumented_query(tmp_path):
    write_tree(tmp_path, api=API_DOC.replace("`RecordEvent`", "records"))
    failures = surface_failures(tmp_path)
    assert any("`RecordEvent`" in f and "not documented" in f
               for f in failures)


def test_protocol_surface_flags_a_missing_error_row(tmp_path):
    api = "\n".join(line for line in textwrap.dedent(API_DOC).splitlines()
                    if "UnknownStudent" not in line)
    write_tree(tmp_path, api=api)
    failures = surface_failures(tmp_path)
    assert any("no row for `UnknownStudent`" in f for f in failures)


def test_protocol_surface_flags_a_drifted_code_and_status(tmp_path):
    api = API_DOC.replace("`unknown_student` | 404",
                          "`missing_student` | 400")
    write_tree(tmp_path, api=api)
    failures = surface_failures(tmp_path)
    assert any("`missing_student`" in f for f in failures)
    assert any("HTTP 400" in f for f in failures)


def test_protocol_surface_flags_a_phantom_documented_error(tmp_path):
    api = API_DOC + "| `GhostError` | `ghost` | 410 | never |\n"
    write_tree(tmp_path, api=api)
    failures = surface_failures(tmp_path)
    assert any("`GhostError`" in f and "does not register" in f
               for f in failures)


def test_code_ref_check_reports_missing_symbols(tmp_path):
    (tmp_path / "mod.py").write_text("def real():\n    pass\n")
    doc = tmp_path / "doc.md"
    doc.write_text("see `mod.py:real` and `mod.py:imaginary`\n")
    failures: list = []
    checked = check_docs.check_code_refs(doc, tmp_path, failures)
    assert checked == 2
    assert len(failures) == 1 and "imaginary" in failures[0]


def test_link_check_reports_broken_relative_links(tmp_path):
    (tmp_path / "real.md").write_text("hi\n")
    doc = tmp_path / "doc.md"
    doc.write_text("[ok](real.md) [bad](gone.md) "
                   "[web](https://example.com)\n")
    failures: list = []
    checked = check_docs.check_links(doc, tmp_path, failures)
    assert checked == 2   # the external URL is skipped
    assert len(failures) == 1 and "gone.md" in failures[0]


# ---------------------------------------------------------------------------
# Metric catalogue: docs/OBSERVABILITY.md vs src/repro/obs/names.py
# ---------------------------------------------------------------------------
NAMES_MODULE = """
    SERVICE_REQUESTS_TOTAL = "service_requests_total"
    STREAM_CACHE_ENTRIES = "stream_cache_entries"
    SERVICE_BATCH_SECONDS = "service_batch_seconds"

    COUNTERS = (SERVICE_REQUESTS_TOTAL,)
    GAUGES = (STREAM_CACHE_ENTRIES,)
    HISTOGRAMS = (SERVICE_BATCH_SECONDS,)
"""

OBS_DOC = """
    # Observability

    | Metric | Kind | Meaning |
    | --- | --- | --- |
    | `service_requests_total` | counter | admitted queries |
    | `stream_cache_entries` | gauge | resident entries |
    | `service_batch_seconds` | histogram | batch latency |
"""


def write_obs_tree(root: Path, names: str = NAMES_MODULE,
                   doc: str = OBS_DOC) -> Path:
    module = root / "src" / "repro" / "obs" / "names.py"
    module.parent.mkdir(parents=True)
    module.write_text(textwrap.dedent(names))
    obs_doc = root / "docs" / "OBSERVABILITY.md"
    obs_doc.parent.mkdir(parents=True, exist_ok=True)
    obs_doc.write_text(textwrap.dedent(doc))
    return root


def catalogue_failures(root: Path) -> list:
    failures: list = []
    check_docs.check_metric_catalogue(root, failures)
    return failures


def test_metric_catalogue_extraction(tmp_path):
    write_obs_tree(tmp_path)
    catalogue = check_docs.metric_catalogue(
        tmp_path / "src" / "repro" / "obs" / "names.py")
    assert catalogue == {"service_requests_total": "counter",
                         "stream_cache_entries": "gauge",
                         "service_batch_seconds": "histogram"}


def test_metric_catalogue_accepts_a_synced_doc(tmp_path):
    write_obs_tree(tmp_path)
    assert catalogue_failures(tmp_path) == []


def test_metric_catalogue_skips_trees_without_the_names_module(tmp_path):
    assert catalogue_failures(tmp_path) == []


def test_metric_catalogue_requires_the_doc_when_names_exist(tmp_path):
    write_obs_tree(tmp_path)
    (tmp_path / "docs" / "OBSERVABILITY.md").unlink()
    failures = catalogue_failures(tmp_path)
    assert len(failures) == 1 and "missing" in failures[0]


def test_metric_catalogue_flags_an_undocumented_metric(tmp_path):
    names = NAMES_MODULE.replace(
        "COUNTERS = (SERVICE_REQUESTS_TOTAL,)",
        'COUNTERS = (SERVICE_REQUESTS_TOTAL, "wal_fsync_total")')
    write_obs_tree(tmp_path, names=names)
    failures = catalogue_failures(tmp_path)
    assert any("no row for `wal_fsync_total`" in f for f in failures)


def test_metric_catalogue_flags_a_drifted_kind(tmp_path):
    doc = OBS_DOC.replace(
        "| `stream_cache_entries` | gauge |",
        "| `stream_cache_entries` | counter |")
    write_obs_tree(tmp_path, doc=doc)
    failures = catalogue_failures(tmp_path)
    assert any("`stream_cache_entries`" in f and "gauge" in f
               for f in failures)


def test_metric_catalogue_flags_a_phantom_documented_metric(tmp_path):
    doc = OBS_DOC + "| `ghost_total` | counter | never |\n"
    write_obs_tree(tmp_path, doc=doc)
    failures = catalogue_failures(tmp_path)
    assert any("`ghost_total`" in f and "does not register" in f
               for f in failures)
