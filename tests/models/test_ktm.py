"""KTM factorization machine baseline."""

import numpy as np
import pytest

from repro.data import make_assist09, train_test_split
from repro.models import KTM, evaluate_probabilistic


@pytest.fixture(scope="module")
def fold():
    dataset = make_assist09(scale=0.15, seed=10)
    return train_test_split(dataset, seed=0)


class TestKTM:
    def test_fit_predict_range(self, fold):
        model = KTM(factors=4, epochs=2).fit(fold.train)
        probs = model.predict_sequence(fold.test[0])
        assert probs.shape == (len(fold.test[0]),)
        assert np.all((probs > 0) & (probs < 1))

    def test_beats_chance(self, fold):
        model = KTM(factors=4, epochs=3, seed=1).fit(fold.train)
        metrics = evaluate_probabilistic(model, fold.test)
        assert metrics["auc"] > 0.52

    def test_predict_before_fit_raises(self, fold):
        with pytest.raises(RuntimeError):
            KTM().predict_sequence(fold.test[0])

    def test_unseen_features_fall_back(self, fold):
        """A student/question never seen in training still gets a finite
        probability (only the shared features fire)."""
        from repro.data import Interaction, StudentSequence
        model = KTM(factors=4, epochs=1).fit(fold.train)
        alien = StudentSequence(99999)
        alien.append(Interaction(fold.train.num_questions, 1, (1,), 0))
        probs = model.predict_sequence(alien)
        assert np.isfinite(probs).all()

    def test_deterministic_given_seed(self, fold):
        a = KTM(factors=4, epochs=1, seed=3).fit(fold.train)
        b = KTM(factors=4, epochs=1, seed=3).fit(fold.train)
        seq = fold.test[0]
        assert np.allclose(a.predict_sequence(seq), b.predict_sequence(seq))

    def test_training_improves_fit(self, fold):
        """More epochs should not make training-set log-loss worse."""
        short = KTM(factors=4, epochs=1, seed=0).fit(fold.train)
        long = KTM(factors=4, epochs=6, seed=0).fit(fold.train)

        def logloss(model):
            eps = 1e-9
            total, count = 0.0, 0
            for seq in fold.train:
                probs = model.predict_sequence(seq)
                labels = np.array(seq.responses, dtype=float)
                total += -(labels * np.log(probs + eps)
                           + (1 - labels) * np.log(1 - probs + eps)).sum()
                count += len(seq)
            return total / count

        assert logloss(long) <= logloss(short) + 0.02

    def test_count_binning_monotone(self):
        from repro.models.ktm import _bin_count
        bins = [_bin_count(c) for c in range(0, 40)]
        assert bins == sorted(bins)
        assert _bin_count(0) == 0
        assert _bin_count(100) == 5
