"""Shared behaviour of the neural baselines: causality, training, metrics."""

import numpy as np
import pytest

from repro.data import (collate, make_assist09,
                        train_test_split)
from repro.models import (AKT, DIMKT, DKT, QIKT, SAKT, SAKTPlus, TrainConfig,
                          evaluate_sequential, fit_sequential,
                          prediction_mask)

DIM = 8


@pytest.fixture(scope="module")
def dataset():
    return make_assist09(scale=0.12, seed=2)


@pytest.fixture(scope="module")
def fold(dataset):
    return train_test_split(dataset, seed=1)


def build(name, dataset, fold, seed=0):
    rng = np.random.default_rng(seed)
    num_q, num_c = dataset.num_questions, dataset.num_concepts
    if name == "dkt":
        return DKT(num_q, num_c, DIM, rng)
    if name == "sakt":
        return SAKT(num_q, num_c, DIM, rng)
    if name == "saktplus":
        return SAKTPlus(num_q, num_c, DIM, rng)
    if name == "akt":
        return AKT(num_q, num_c, DIM, rng)
    if name == "dimkt":
        return DIMKT.from_dataset(fold.train, num_q, num_c, DIM, rng)
    if name == "qikt":
        return QIKT(num_q, num_c, DIM, rng)
    raise KeyError(name)


ALL_MODELS = ["dkt", "sakt", "saktplus", "akt", "dimkt", "qikt"]


@pytest.mark.parametrize("name", ALL_MODELS)
class TestSharedBehaviour:
    def test_probability_shape_and_range(self, name, dataset, fold):
        model = build(name, dataset, fold)
        batch = collate(list(fold.test)[:4])
        probs = model.predict_proba(batch)
        assert probs.shape == batch.questions.shape
        assert np.all((probs > 0) & (probs < 1))

    def test_causality_no_future_leak(self, name, dataset, fold):
        """Flipping a later response must not change earlier predictions."""
        model = build(name, dataset, fold)
        sequence = fold.test[0][:8]
        batch = collate([sequence])
        base = model.predict_proba(batch).copy()
        flipped = collate([sequence])
        flipped.responses[0, 6] = 1 - flipped.responses[0, 6]
        out = model.predict_proba(flipped)
        assert np.allclose(out[0, :7], base[0, :7]), \
            f"{name} leaked a future response backwards"

    def test_loss_finite_and_positive(self, name, dataset, fold):
        model = build(name, dataset, fold)
        batch = collate(list(fold.train)[:4])
        loss = model.loss(batch)
        assert np.isfinite(loss.item()) and loss.item() > 0

    def test_short_training_improves_loss(self, name, dataset, fold):
        model = build(name, dataset, fold)
        result = fit_sequential(model, fold.train,
                                config=TrainConfig(epochs=3, lr=3e-3, seed=0))
        assert result.train_losses[-1] < result.train_losses[0]


class TestPredictionMask:
    def test_first_position_excluded(self, fold):
        batch = collate(list(fold.test)[:3])
        mask = prediction_mask(batch)
        assert not mask[:, 0].any()
        assert mask.sum() == batch.mask.sum() - 3


class TestModelSpecifics:
    def test_dimkt_difficulty_levels_in_range(self, dataset, fold):
        from repro.models import compute_difficulty_levels
        qd, cd = compute_difficulty_levels(fold.train, dataset.num_questions,
                                           dataset.num_concepts, bins=10)
        assert qd.min() >= 1 and qd.max() <= 10
        assert len(qd) == dataset.num_questions + 1

    def test_dimkt_unseen_questions_get_median(self, dataset, fold):
        from repro.models import compute_difficulty_levels
        qd, _ = compute_difficulty_levels(fold.train, dataset.num_questions + 50,
                                          dataset.num_concepts)
        assert qd[-1] == 5  # never observed -> median level

    def test_qikt_explanation_structure(self, dataset, fold):
        model = build("qikt", dataset, fold)
        batch = collate([fold.test[0]])
        scores = model.explain(batch)
        assert set(scores) >= {"knowledge_acquisition", "knowledge_mastery",
                               "question_solving"}
        assert scores["knowledge_acquisition"].shape == batch.questions.shape

    def test_sakt_records_attention(self, dataset, fold):
        model = build("sakt", dataset, fold)
        batch = collate([fold.test[0]])
        model.predict_proba(batch)
        att = model.last_attention
        assert att.shape[0] == 1 and att.shape[2] == batch.length

    def test_saktplus_attention_to_history_rows_normalized(self, dataset, fold):
        model = build("saktplus", dataset, fold)
        sequence = fold.test[0][:8]
        batch = collate([sequence])
        attention = model.attention_to_history(batch)
        # Row for the last position attends over its 7 predecessors.
        row = attention[0, 7, :7]
        assert np.isclose(row.sum(), 1.0, atol=1e-6)

    def test_akt_difficulty_embedding_is_scalar(self, dataset, fold):
        model = build("akt", dataset, fold)
        assert model.embedder.difficulty.weight.shape == \
            (dataset.num_questions + 1, 1)

    def test_overfits_tiny_sample(self, dataset, fold):
        """DKT memorizes 4 sequences — end-to-end learning sanity check."""
        model = build("dkt", dataset, fold, seed=5)
        tiny = fold.train.subset(range(4))
        fit_sequential(model, tiny, config=TrainConfig(epochs=40, lr=5e-3))
        metrics = evaluate_sequential(model, tiny)
        assert metrics["acc"] > 0.8
