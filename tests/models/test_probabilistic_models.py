"""IKT (TAN) and BKT: fitting, prediction, internals."""

import numpy as np
import pytest

from repro.data import (Interaction, StudentSequence,
                        make_assist09, train_test_split)
from repro.models import (BKT, BKTParameters, IKT, TANClassifier,
                          evaluate_probabilistic)


@pytest.fixture(scope="module")
def fold():
    dataset = make_assist09(scale=0.15, seed=4)
    return train_test_split(dataset, seed=0)


class TestIKT:
    def test_fit_predict_shapes(self, fold):
        model = IKT().fit(fold.train)
        seq = fold.test[0]
        probs = model.predict_sequence(seq)
        assert probs.shape == (len(seq),)
        assert np.all((probs > 0) & (probs < 1))

    def test_beats_chance(self, fold):
        model = IKT().fit(fold.train)
        metrics = evaluate_probabilistic(model, fold.test)
        assert metrics["auc"] > 0.55

    def test_predict_before_fit_raises(self, fold):
        with pytest.raises(RuntimeError):
            IKT().predict_sequence(fold.test[0])

    def test_features_are_causal(self, fold):
        """Features for position i must not change when later responses do."""
        model = IKT().fit(fold.train)
        seq = fold.test[0][:8]
        base = model.predict_sequence(seq)
        # Flip the last response: predictions for earlier positions fixed.
        flipped = StudentSequence(seq.student_id, list(seq.interactions))
        last = flipped.interactions[-1]
        flipped.interactions[-1] = Interaction(
            last.question_id, 1 - last.correct, last.concept_ids,
            last.timestamp)
        out = model.predict_sequence(flipped)
        assert np.allclose(out[:-1], base[:-1])


class TestTANClassifier:
    def _data(self, n=600, seed=0):
        """Feature 0 drives the class; feature 1 copies feature 0."""
        rng = np.random.default_rng(seed)
        f0 = rng.integers(0, 3, size=n)
        f1 = np.where(rng.random(n) < 0.9, f0, rng.integers(0, 3, size=n))
        f2 = rng.integers(0, 2, size=n)
        labels = (f0 >= 1).astype(np.int64)
        labels = np.where(rng.random(n) < 0.1, 1 - labels, labels)
        return np.stack([f0, f1, f2], axis=1), labels

    def test_learns_predictive_structure(self):
        features, labels = self._data()
        clf = TANClassifier([3, 3, 2]).fit(features, labels)
        probs = clf.predict_proba(features)
        acc = ((probs > 0.5) == labels).mean()
        assert acc > 0.8

    def test_tree_links_correlated_features(self):
        features, labels = self._data()
        clf = TANClassifier([3, 3, 2]).fit(features, labels)
        # One feature is the root (no parent); the copied feature should be
        # attached to its source rather than to the noise feature.
        assert clf.parents.count(None) == 1
        assert clf.parents[1] == 0 or clf.parents[0] == 1

    def test_probabilities_are_valid(self):
        features, labels = self._data(seed=2)
        clf = TANClassifier([3, 3, 2]).fit(features, labels)
        probs = clf.predict_proba(features)
        assert np.all((probs >= 0) & (probs <= 1))


class TestBKT:
    def test_fit_and_predict(self, fold):
        model = BKT(em_iterations=3).fit(fold.train)
        probs = model.predict_sequence(fold.test[0])
        assert np.all((probs > 0) & (probs < 1))

    def test_learns_concept_parameters(self, fold):
        model = BKT(em_iterations=3).fit(fold.train)
        assert len(model.params) > 0
        for params in model.params.values():
            assert 0 < params.p_learn < 1
            assert params.p_guess <= 0.45 and params.p_slip <= 0.45

    def test_mastery_rises_after_correct_streak(self):
        """Monotone belief update: many correct answers raise P(correct)."""
        model = BKT()
        model.params[1] = BKTParameters(p_init=0.3, p_learn=0.2,
                                        p_guess=0.2, p_slip=0.1)
        seq = StudentSequence(1)
        for i in range(6):
            seq.append(Interaction(1, 1, (1,), i))
        probs = model.predict_sequence(seq)
        assert np.all(np.diff(probs) >= -1e-12)

    def test_unseen_concept_uses_default(self):
        model = BKT()
        seq = StudentSequence(1)
        seq.append(Interaction(1, 1, (99,), 0))
        probs = model.predict_sequence(seq)
        assert probs.shape == (1,)

    def test_clipping_keeps_identifiable_region(self):
        params = BKTParameters(p_init=2.0, p_learn=-1.0, p_guess=0.9,
                               p_slip=0.99).clipped()
        assert params.p_init <= 0.99
        assert params.p_learn >= 0.01
        assert params.p_guess <= 0.45 and params.p_slip <= 0.45
