"""Unit coverage for the ``repro.obs`` metrics primitives.

``tests/obs/test_service_metrics.py`` proves the *instrumented* stack
emits the right series; this suite pins the primitives themselves —
instrument arithmetic, quantile estimation against known sleeps (via a
pinned fake clock, not real sleeping), registry identity/kind rules,
the disabled-registry null path, snapshot consistency mid-traffic
(INV001 applied to telemetry), and the Prometheus rendering.
"""

import threading

import pytest

from repro import obs
from repro.obs import metrics


@pytest.fixture()
def registry():
    return obs.MetricsRegistry()


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------
class TestCounter:
    def test_increments(self):
        counter = obs.Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == 5

    def test_rejects_negative_increments(self):
        counter = obs.Counter()
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_thread_hammer_loses_no_increments(self):
        counter = obs.Counter()
        threads = [threading.Thread(
            target=lambda: [counter.inc() for _ in range(1000)])
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = obs.Gauge()
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5


class TestHistogram:
    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="strictly ascending"):
            obs.Histogram(buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly ascending"):
            obs.Histogram(buckets=(2.0, 1.0))

    def test_counts_sum_min_max(self):
        histogram = obs.Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(55.55)
        assert snap["min"] == 0.05
        assert snap["max"] == 50.0
        assert [count for _, count in snap["buckets"]] == [1, 1, 1]
        assert snap["overflow"] == 1
        # Internal consistency: bucket counts + overflow == count.
        assert sum(c for _, c in snap["buckets"]) + snap["overflow"] \
            == snap["count"]

    def test_quantiles_bound_known_observations(self):
        """Sleep-shaped latencies land in the right quantile bands.

        Estimated quantiles are bucket interpolations, so the contract
        is *bounds*: the estimate lives within the bucket that holds
        the true value, clamped to observed min/max.
        """
        histogram = obs.Histogram()
        observations = [0.001] * 50 + [0.010] * 45 + [0.500] * 5
        for value in observations:
            histogram.observe(value)
        p50 = histogram.quantile(0.5)
        p99 = histogram.quantile(0.99)
        assert 0.001 <= p50 <= 0.010      # median sits at the 1ms edge
        assert 0.010 < p99 <= 0.500      # p99 is pulled by the 500ms tail
        assert histogram.quantile(1.0) == 0.5
        assert histogram.quantile(0.0) == pytest.approx(0.001)

    def test_quantile_on_empty_histogram_is_none(self):
        assert obs.Histogram().quantile(0.5) is None

    def test_quantile_rejects_out_of_range(self):
        histogram = obs.Histogram()
        histogram.observe(1.0)
        with pytest.raises(ValueError, match="within"):
            histogram.quantile(1.5)

    def test_overflow_rank_reports_observed_max(self):
        histogram = obs.Histogram(buckets=(1.0,))
        for value in (0.5, 9.0, 11.0):
            histogram.observe(value)
        assert histogram.quantile(0.99) == 11.0

    def test_latency_buckets_span_10us_to_100s(self):
        bounds = metrics.DEFAULT_LATENCY_BUCKETS
        assert bounds[0] == pytest.approx(1e-5)
        assert bounds[-1] == pytest.approx(100.0)
        assert list(bounds) == sorted(bounds)


class TestTimer:
    def test_measures_on_the_injectable_clock(self):
        ticks = iter((100.0, 102.5))
        previous = obs.set_clock(lambda: next(ticks))
        try:
            histogram = obs.Histogram()
            with obs.Timer(histogram) as timer:
                pass
        finally:
            obs.set_clock(previous)
        assert timer.elapsed_s == pytest.approx(2.5)
        assert timer.elapsed_ms == pytest.approx(2500.0)
        assert histogram.count == 1

    def test_utils_reexport_is_the_obs_timer(self):
        from repro.utils import Timer as LegacyTimer
        assert LegacyTimer is obs.Timer


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_same_name_and_labels_return_one_series(self, registry):
        a = registry.counter("hits_total", endpoint="/v1/query")
        b = registry.counter("hits_total", endpoint="/v1/query")
        assert a is b

    def test_distinct_labels_are_distinct_series(self, registry):
        a = registry.counter("hits_total", endpoint="/a")
        b = registry.counter("hits_total", endpoint="/b")
        assert a is not b
        a.inc(2)
        b.inc(3)
        assert registry.counter_total("hits_total") == 5

    def test_label_order_does_not_matter(self, registry):
        a = registry.counter("c_total", x="1", y="2")
        b = registry.counter("c_total", y="2", x="1")
        assert a is b

    def test_kind_mismatch_raises(self, registry):
        registry.counter("latency")
        with pytest.raises(ValueError, match="is a counter"):
            registry.histogram("latency")

    def test_disabled_registry_hands_out_null_instruments(self):
        registry = obs.MetricsRegistry(enabled=False)
        counter = registry.counter("hits_total")
        counter.inc(100)
        gauge = registry.gauge("depth")
        gauge.set(7.0)
        histogram = registry.histogram("latency")
        histogram.observe(1.0)
        assert counter.value == 0
        assert gauge.value == 0.0
        assert histogram.count == 0
        snap = registry.snapshot()
        assert snap == {"counters": [], "gauges": [], "histograms": []}

    def test_set_registry_swaps_and_restores(self):
        fresh = obs.MetricsRegistry()
        previous = obs.set_registry(fresh)
        try:
            assert obs.get_registry() is fresh
        finally:
            obs.set_registry(previous)
        assert obs.get_registry() is previous

    def test_snapshot_is_consistent_mid_traffic(self, registry):
        """INV001 applied to telemetry: a snapshot taken while writer
        threads hammer the registry never shows a torn histogram
        (bucket totals always equal the count)."""
        histogram = registry.histogram("latency")
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                histogram.observe(0.01)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                snap = histogram.snapshot()
                buckets = sum(c for _, c in snap["buckets"])
                assert buckets + snap["overflow"] == snap["count"]
        finally:
            stop.set()
            for t in threads:
                t.join()


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
class TestPrometheusRendering:
    def test_exposition_format(self, registry):
        registry.counter("hits_total", endpoint="/v1/query").inc(3)
        registry.gauge("resident_bytes").set(1024)
        histogram = registry.histogram("latency", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.render_prometheus()
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{endpoint="/v1/query"} 3' in text
        assert "resident_bytes 1024" in text
        # _bucket series are cumulative; +Inf equals _count.
        assert 'latency_bucket{le="0.1"} 1' in text
        assert 'latency_bucket{le="1.0"} 2' in text
        assert 'latency_bucket{le="+Inf"} 3' in text
        assert "latency_count 3" in text
        assert text.endswith("\n")

    def test_json_snapshot_carries_quantiles(self, registry):
        histogram = registry.histogram("latency")
        histogram.observe(0.002)
        entry = registry.snapshot()["histograms"][0]
        assert entry["name"] == "latency"
        assert entry["data"]["p50"] == pytest.approx(0.002)
        assert entry["data"]["p99"] == pytest.approx(0.002)
