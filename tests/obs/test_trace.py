"""Request IDs and the span log (``repro.obs.trace``)."""

import re
import threading

import pytest

from repro import obs
from repro.obs import trace


@pytest.fixture(autouse=True)
def clean_span_log():
    obs.clear_spans()
    yield
    obs.clear_spans()


class TestRequestIds:
    def test_format_and_monotonicity(self):
        first = obs.new_request_id()
        second = obs.new_request_id()
        assert re.fullmatch(r"req-\d{8}", first)
        assert int(second.split("-")[1]) == int(first.split("-")[1]) + 1

    def test_prefix_swap_marks_process_origin(self):
        previous = obs.set_id_prefix("w3")
        try:
            assert obs.new_request_id().startswith("w3-")
        finally:
            obs.set_id_prefix(previous)
        assert obs.new_request_id().startswith("req-")

    def test_ids_are_unique_across_threads(self):
        minted = []
        lock = threading.Lock()

        def mint():
            ids = [obs.new_request_id() for _ in range(200)]
            with lock:
                minted.extend(ids)

        threads = [threading.Thread(target=mint) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(minted)) == len(minted) == 1600


class TestSpans:
    def test_span_records_name_id_and_duration(self):
        ticks = iter((10.0, 10.25))
        previous = obs.set_clock(lambda: next(ticks))
        try:
            with obs.Span("gateway.batch", "req-00000042") as span:
                pass
        finally:
            obs.set_clock(previous)
        assert span.elapsed_s == pytest.approx(0.25)
        recorded = obs.recent_spans()[-1]
        assert recorded == {"name": "gateway.batch",
                            "request_id": "req-00000042",
                            "elapsed_s": pytest.approx(0.25)}

    def test_span_feeds_a_histogram(self):
        histogram = obs.Histogram()
        with obs.Span("router.fanout.shard0", histogram=histogram):
            pass
        assert histogram.count == 1
        assert obs.recent_spans()[-1]["request_id"] is None

    def test_span_log_is_bounded(self):
        for index in range(trace.SPAN_LOG_LIMIT + 10):
            with obs.Span(f"stage{index}"):
                pass
        spans = obs.recent_spans()
        assert len(spans) == trace.SPAN_LOG_LIMIT
        # Oldest fell off the back; the newest survives.
        assert spans[-1]["name"] == f"stage{trace.SPAN_LOG_LIMIT + 9}"
        assert spans[0]["name"] == "stage10"

    def test_recent_spans_limit(self):
        for index in range(5):
            with obs.Span(f"s{index}"):
                pass
        assert [s["name"] for s in obs.recent_spans(limit=2)] \
            == ["s3", "s4"]
