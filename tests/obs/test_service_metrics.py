"""Instrumented-stack coverage: the serving hot paths emit the series
``docs/OBSERVABILITY.md`` catalogues, increments survive concurrency,
and the gateway surfaces everything at ``/v1/metrics``.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.core import RCKT, RCKTConfig
from repro.data import SimulationConfig, StudentSimulator, build_dataset
from repro.obs import names as metric_names
from repro.serve import (BatchEnvelope, InferenceEngine, RecordEvent,
                         ScoreQuery, Service, ServiceClient,
                         start_http_thread)

NUM_QUESTIONS = 25
NUM_CONCEPTS = 4


def build_service():
    """A small service wired to a *fresh* registry (callers swap it in
    before construction so instrument handles bind to it)."""
    config = SimulationConfig(num_students=3, num_questions=NUM_QUESTIONS,
                              num_concepts=NUM_CONCEPTS,
                              sequence_length=(5, 8))
    simulator = StudentSimulator(config, seed=11)
    dataset = build_dataset("obs", simulator.simulate(seed=12),
                            NUM_QUESTIONS, NUM_CONCEPTS)
    model = RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                 RCKTConfig(encoder="dkt", dim=8, layers=1, seed=3))
    engine = InferenceEngine(model)
    engine.load_dataset(dataset)
    return Service(engine), dataset


@pytest.fixture()
def isolated(request):
    """Swap in a fresh registry, build the stack, restore afterwards."""
    registry = obs.MetricsRegistry()
    previous = obs.set_registry(registry)
    service, dataset = build_service()

    def teardown():
        service.close()
        obs.set_registry(previous)

    request.addfinalizer(teardown)
    return registry, service, dataset


class TestServiceInstrumentation:
    def test_batch_emits_every_scheduler_series(self, isolated):
        registry, service, dataset = isolated
        students = [s.student_id for s in dataset]
        queries = [ScoreQuery(sid, 1 + i % NUM_QUESTIONS, (1,))
                   for i, sid in enumerate(students)]
        queries.append(RecordEvent(students[0], 2, 1, (1,)))
        replies = service.execute_batch(BatchEnvelope(tuple(queries)))
        assert all(r.ok for r in replies if hasattr(r, "ok"))

        snap = registry.snapshot()
        counters = {(e["name"], tuple(sorted(e["labels"].items()))):
                    e["value"] for e in snap["counters"]}
        assert counters[(metric_names.SERVICE_REQUESTS_TOTAL,
                         (("type", "score"),))] == len(students)
        assert counters[(metric_names.SERVICE_REQUESTS_TOTAL,
                         (("type", "record"),))] == 1
        histograms = {e["name"] for e in snap["histograms"]}
        assert metric_names.SERVICE_BATCH_SECONDS in histograms
        assert metric_names.SERVICE_BATCH_SIZE in histograms
        assert metric_names.SERVICE_QUERY_SECONDS in histograms
        # The engine hot path reported too.
        assert registry.counter_total(
            metric_names.ENGINE_FORWARD_CALLS_TOTAL) >= 1

    def test_submit_flush_observes_admission_wait(self, isolated):
        registry, service, dataset = isolated
        student = dataset[0].student_id
        pending = service.submit(ScoreQuery(student, 1, (1,)))
        service.flush()
        assert pending.reply.ok
        wait = registry.histogram(
            metric_names.SERVICE_ADMISSION_WAIT_SECONDS)
        assert wait.count == 1

    def test_stream_cache_counters_mirror_store_stats(self, isolated):
        registry, service, dataset = isolated
        student = dataset[0].student_id
        for _ in range(3):
            service.execute(ScoreQuery(student, 1, (1,)))
        stats = service.engine().stream_cache_stats()
        assert registry.counter_total(
            metric_names.STREAM_CACHE_HITS_TOTAL) == stats["hits"]
        assert registry.counter_total(
            metric_names.STREAM_CACHE_MISSES_TOTAL) == stats["misses"]

    def test_concurrent_batches_lose_no_increments(self, isolated):
        """N request threads through ``Service.execute_batch``: the
        per-type counter equals exactly the number of admitted queries."""
        registry, service, dataset = isolated
        students = [s.student_id for s in dataset]
        threads_n, per_thread = 8, 25
        failures = []

        def hammer(worker_index):
            for i in range(per_thread):
                student = students[(worker_index + i) % len(students)]
                reply = service.execute(
                    ScoreQuery(student, 1 + i % NUM_QUESTIONS, (1,)))
                if not getattr(reply, "ok", False):
                    failures.append(reply)

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        total = threads_n * per_thread
        assert registry.counter_total(
            metric_names.SERVICE_REQUESTS_TOTAL) == total
        batch_size = registry.histogram(metric_names.SERVICE_BATCH_SIZE,
                                        buckets=obs.SIZE_BUCKETS)
        batch_seconds = registry.histogram(
            metric_names.SERVICE_BATCH_SECONDS)
        assert batch_size.count == batch_seconds.count == total
        snap = batch_seconds.snapshot()
        assert sum(c for _, c in snap["buckets"]) + snap["overflow"] \
            == snap["count"]


class TestGatewaySurface:
    @pytest.fixture()
    def stack(self, isolated):
        registry, service, dataset = isolated
        server, thread = start_http_thread(service)
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_port}", timeout=10.0)
        yield registry, server, client, dataset
        server.shutdown()

    def test_metrics_json_and_prometheus(self, stack):
        registry, server, client, dataset = stack
        student = dataset[0].student_id
        assert client.query(ScoreQuery(student, 1, (1,))).ok

        snapshot = client.metrics()
        assert snapshot["role"] == "gateway"
        names = {e["name"] for e in snapshot["counters"]}
        assert metric_names.SERVICE_REQUESTS_TOTAL in names
        assert metric_names.HTTP_REQUESTS_TOTAL in names
        endpoint_counts = {
            e["labels"]["endpoint"]: e["value"]
            for e in snapshot["counters"]
            if e["name"] == metric_names.HTTP_REQUESTS_TOTAL}
        assert endpoint_counts["/v1/query"] == 1

        text = client.metrics_text()
        assert "# TYPE http_request_seconds histogram" in text
        assert 'http_requests_total{endpoint="/v1/query"} 1' in text

    def test_batch_mints_and_echoes_a_request_id(self, stack):
        registry, server, client, dataset = stack
        student = dataset[0].student_id
        envelope = BatchEnvelope((ScoreQuery(student, 1, (1,)),))
        from repro.serve import to_wire
        body = json.dumps(to_wire(envelope)).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.server_port}/v1/batch", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=10.0) as response:
            request_id = response.headers.get("X-Request-Id")
            payload = json.loads(response.read())
        assert payload["replies"]
        assert request_id and request_id.startswith("req-")
        # The span log ties the same ID to the gateway.batch stage.
        spans = client.metrics()["spans"]
        assert {"name": "gateway.batch", "request_id": request_id} \
            in [{"name": s["name"], "request_id": s["request_id"]}
                for s in spans]

    def test_caller_supplied_request_id_is_honored(self, stack):
        registry, server, client, dataset = stack
        student = dataset[0].student_id
        envelope = BatchEnvelope((ScoreQuery(student, 1, (1,)),),
                                 request_id="rt-00000077")
        replies = client.batch(envelope)
        assert replies[0].ok
        spans = client.metrics()["spans"]
        assert any(s["request_id"] == "rt-00000077" for s in spans)

    def test_health_reports_uptime_and_cache_occupancy(self, stack):
        registry, server, client, dataset = stack
        student = dataset[0].student_id
        assert client.query(ScoreQuery(student, 1, (1,))).ok
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0.0
        assert health["served_requests"] >= 1
        caches = health["stream_caches"]["default"]
        assert {"entries", "hits", "misses"} <= set(caches)

    def test_unknown_endpoint_label_is_bounded(self, stack):
        registry, server, client, dataset = stack
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.server_port}/v1/nope")
        try:
            urllib.request.urlopen(request, timeout=10.0)
        except urllib.error.HTTPError as error:
            assert error.code == 404
        snapshot = client.metrics()
        labels = {e["labels"]["endpoint"]
                  for e in snapshot["counters"]
                  if e["name"] == metric_names.HTTP_ERRORS_TOTAL}
        assert labels == {"other"}
