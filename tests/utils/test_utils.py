"""Utilities: seeding determinism, checkpointing, timing, gradcheck meta."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.utils import (Timer, derive_rng, gradcheck, load_checkpoint,
                         load_model, numerical_gradient, save_checkpoint,
                         save_model, spawn_rngs, stable_hash)


class TestSeeding:
    def test_same_path_same_stream(self):
        a = derive_rng(7, "model", "dropout").random(5)
        b = derive_rng(7, "model", "dropout").random(5)
        assert np.array_equal(a, b)

    def test_different_paths_differ(self):
        a = derive_rng(7, "model").random(5)
        b = derive_rng(7, "data").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(2, "x").random(5)
        assert not np.array_equal(a, b)

    def test_stable_hash_is_process_independent(self):
        # Known value pinned so a changed hash function is caught.
        assert stable_hash("baseline") == stable_hash("baseline")
        assert stable_hash("a") != stable_hash("b")
        assert 0 <= stable_hash("anything") < 2 ** 32

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(3, count=4)
        assert len(rngs) == 4
        streams = [rng.random(3) for rng in rngs]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(streams[i], streams[j])


class TestCheckpoint:
    def test_roundtrip_state(self, tmp_path):
        state = {"fc.weight": np.arange(6.0).reshape(2, 3),
                 "fc.bias": np.zeros(3)}
        path = tmp_path / "model.npz"
        save_checkpoint(path, state, metadata={"encoder": "dkt", "dim": 16})
        loaded, meta = load_checkpoint(path)
        assert set(loaded) == set(state)
        assert np.array_equal(loaded["fc.weight"], state["fc.weight"])
        assert meta == {"encoder": "dkt", "dim": 16}

    def test_model_roundtrip(self, tmp_path):
        from repro import nn
        rng = np.random.default_rng(0)
        a = nn.MLP([4, 8, 1], rng)
        b = nn.MLP([4, 8, 1], np.random.default_rng(9))
        path = tmp_path / "mlp.npz"
        save_model(path, a, metadata={"kind": "mlp"})
        meta = load_model(path, b)
        assert meta["kind"] == "mlp"
        x = Tensor(rng.normal(size=(3, 4)))
        assert np.allclose(a(x).data, b(x).data)

    def test_rckt_checkpoint_roundtrip(self, tmp_path):
        from repro.core import RCKT, RCKTConfig
        from repro.data import collate, make_assist09
        dataset = make_assist09(scale=0.1, seed=1)
        config = RCKTConfig(encoder="dkt", dim=8, layers=1)
        a = RCKT(dataset.num_questions, dataset.num_concepts, config)
        b = RCKT(dataset.num_questions, dataset.num_concepts,
                 config.with_overrides(seed=99))
        path = tmp_path / "rckt.npz"
        save_model(path, a)
        load_model(path, b)
        batch = collate([dataset[0]])
        cols = np.array([len(dataset[0]) - 1])
        assert np.allclose(a.predict_scores(batch, cols),
                           b.predict_scores(batch, cols))

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "x.npz",
                            {"__checkpoint_meta__": np.zeros(1)})

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "raw.npz"
        np.savez(path, a=np.zeros(2))
        with pytest.raises(ValueError):
            load_checkpoint(path)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(10000))
        assert t.elapsed_s >= 0
        assert t.elapsed_ms == pytest.approx(t.elapsed_s * 1000)


class TestGradcheckMeta:
    def test_detects_wrong_gradient(self):
        """gradcheck must flag an op with a deliberately broken backward."""
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)

        def broken(t):
            out = t * t
            # sabotage: double the recorded gradient
            original = out._backward
            def bad(grad):
                original(grad * 2.0)
            out._backward = bad
            return out.sum()

        with pytest.raises(AssertionError):
            gradcheck(broken, [x])

    def test_numerical_gradient_of_quadratic(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        grad = numerical_gradient(lambda t: (t * t).sum(), [x], 0)
        assert np.allclose(grad, [6.0], atol=1e-4)

    def test_requires_scalar_output(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            gradcheck(lambda t: t * 2.0, [x])
