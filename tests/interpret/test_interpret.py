"""Interpretation tooling: explanations, proficiency traces, case studies."""

import numpy as np
import pytest

from repro.core import RCKT, RCKTConfig, fit_rckt
from repro.data import make_assist09, train_test_split
from repro.interpret import (build_case_study, comparison_table,
                             explain_prediction, influence_bars, line_chart,
                             related_questions, trace_proficiency,
                             virtual_question_embedding)
from repro.models import SAKTPlus, TrainConfig, fit_sequential


@pytest.fixture(scope="module")
def setup():
    dataset = make_assist09(scale=0.12, seed=6)
    fold = train_test_split(dataset, seed=0)
    config = RCKTConfig(encoder="dkt", dim=8, layers=1, epochs=2,
                        batch_size=16, lr=3e-3, seed=0)
    model = RCKT(dataset.num_questions, dataset.num_concepts, config)
    fit_rckt(model, fold.train, eval_stride=3)
    return dataset, fold, model


class TestExplanations:
    def test_rows_cover_history(self, setup):
        _, fold, model = setup
        sequence = fold.test[0][:9]
        explanation = explain_prediction(model, sequence)
        assert len(explanation.rows) == 8
        assert [r.position for r in explanation.rows] == list(range(8))

    def test_totals_are_sums_of_rows(self, setup):
        _, fold, model = setup
        explanation = explain_prediction(model, fold.test[0][:9])
        correct_sum = sum(r.influence for r in explanation.rows if r.correct)
        incorrect_sum = sum(r.influence for r in explanation.rows
                            if not r.correct)
        assert np.isclose(correct_sum, explanation.delta_plus, atol=1e-9)
        assert np.isclose(incorrect_sum, explanation.delta_minus, atol=1e-9)

    def test_prediction_matches_score(self, setup):
        _, fold, model = setup
        explanation = explain_prediction(model, fold.test[0][:9])
        assert explanation.prediction == int(explanation.score >= 0.5)

    def test_render_contains_verdict(self, setup):
        _, fold, model = setup
        text = explain_prediction(model, fold.test[0][:6]).render()
        assert "prediction:" in text and "Δ+" in text

    def test_requires_history(self, setup):
        _, fold, model = setup
        with pytest.raises(ValueError):
            explain_prediction(model, fold.test[0][:1])


class TestProficiency:
    def test_trace_values_in_unit_interval(self, setup):
        dataset, fold, model = setup
        sequence = fold.test[0][:10]
        concept = sequence[0].concept_ids[0]
        pool = related_questions(dataset, concept)
        trace = trace_proficiency(model, sequence, concept, pool,
                                  steps=[2, 5, 8])
        assert trace.proficiencies.shape == (3,)
        assert np.all((trace.proficiencies >= 0) &
                      (trace.proficiencies <= 1))

    def test_influence_rows_lengths(self, setup):
        dataset, fold, model = setup
        sequence = fold.test[0][:10]
        concept = sequence[0].concept_ids[0]
        pool = related_questions(dataset, concept)
        trace = trace_proficiency(model, sequence, concept, pool,
                                  steps=[3, 6])
        assert len(trace.influence_rows[0]) == 3
        assert len(trace.influence_rows[1]) == 6

    def test_virtual_embedding_is_mean_plus_concept(self, setup):
        dataset, _, model = setup
        pool = related_questions(dataset, 1)[:4]
        emb = virtual_question_embedding(model, 1, pool)
        weights = model.generator.embedder
        expected = (weights.question_embedding.weight.data[pool].mean(axis=0)
                    + weights.concept_embedding.weight.data[1])
        assert np.allclose(emb.data, expected)

    def test_empty_pool_raises(self, setup):
        _, _, model = setup
        with pytest.raises(ValueError):
            virtual_question_embedding(model, 1, [])

    def test_related_questions_only_matching(self, setup):
        dataset, _, _ = setup
        pool = related_questions(dataset, 2)
        for sequence in dataset:
            for interaction in sequence:
                if interaction.question_id in pool:
                    break


class TestCaseStudy:
    def test_structure(self, setup):
        dataset, fold, model = setup
        sakt = SAKTPlus(dataset.num_questions, dataset.num_concepts, 8,
                        np.random.default_rng(1))
        fit_sequential(sakt, fold.train, config=TrainConfig(epochs=1))
        sequence = fold.test[0][:8]
        case = build_case_study(model, sakt, sequence)
        assert len(case.rows) == 7
        attention_total = sum(r.attention for r in case.rows)
        assert np.isclose(attention_total, 1.0, atol=1e-5)
        text = case.render()
        assert "Inf." in text and "Att." in text


class TestAsciiPlots:
    def test_line_chart_has_all_series(self):
        text = line_chart({"a": [1, 2, 3], "b": [3, 2, 1]}, title="T")
        assert "T" in text and "a" in text and "b" in text

    def test_line_chart_empty_raises(self):
        with pytest.raises(ValueError):
            line_chart({})

    def test_influence_bars_sign_glyphs(self):
        text = influence_bars([0.5, -0.2], [1, 0])
        lines = text.splitlines()
        assert "[+]" in lines[0] and "[-]" in lines[1]

    def test_influence_bars_shape_mismatch(self):
        with pytest.raises(ValueError):
            influence_bars([0.5], [1, 0])

    def test_comparison_table_alignment(self):
        text = comparison_table(["m", "auc"], [["DKT", 0.75]])
        assert "0.7500" in text

    def test_comparison_table_row_width_check(self):
        with pytest.raises(ValueError):
            comparison_table(["a", "b"], [["only-one"]])
