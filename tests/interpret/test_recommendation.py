"""Question recommendation built on response influences."""

import pytest

from repro.core import RCKT, RCKTConfig, fit_rckt
from repro.data import Interaction, make_assist09, train_test_split
from repro.interpret import (QuestionRecommendation, question_value,
                             recommend_questions)


@pytest.fixture(scope="module")
def setup():
    dataset = make_assist09(scale=0.12, seed=8)
    fold = train_test_split(dataset, seed=0)
    config = RCKTConfig(encoder="dkt", dim=8, layers=1, epochs=2,
                        batch_size=16, lr=3e-3, seed=0)
    model = RCKT(dataset.num_questions, dataset.num_concepts, config)
    fit_rckt(model, fold.train, eval_stride=4)
    student = fold.test[0][:8]
    candidates = [Interaction(q, 1, (1 + q % dataset.num_concepts,))
                  for q in range(1, 7)]
    return model, student, candidates


class TestQuestionValue:
    def test_non_negative(self, setup):
        model, student, candidates = setup
        value = question_value(model, student, candidates[0])
        assert value >= 0.0

    def test_requires_history(self, setup):
        model, _, candidates = setup
        from repro.data import StudentSequence
        with pytest.raises(ValueError):
            question_value(model, StudentSequence(1), candidates[0])

    def test_deterministic(self, setup):
        model, student, candidates = setup
        a = question_value(model, student, candidates[1])
        b = question_value(model, student, candidates[1])
        assert a == b


class TestRecommendations:
    def test_top_k_and_sorted(self, setup):
        model, student, candidates = setup
        recs = recommend_questions(model, student, candidates, top_k=3)
        assert len(recs) == 3
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_fields_populated(self, setup):
        model, student, candidates = setup
        recs = recommend_questions(model, student, candidates, top_k=2)
        for rec in recs:
            assert isinstance(rec, QuestionRecommendation)
            assert 0.0 <= rec.success_probability <= 1.0
            assert rec.value >= 0.0
            assert "q" in rec.describe()

    def test_empty_candidates(self, setup):
        model, student, _ = setup
        assert recommend_questions(model, student, []) == []

    def test_difficulty_fit_prefers_target_success(self, setup):
        """With value_weight 0, ranking is purely by closeness to the
        target success probability."""
        model, student, candidates = setup
        recs = recommend_questions(model, student, candidates,
                                   top_k=len(candidates), value_weight=0.0,
                                   target_success=0.6)
        fits = [1.0 - abs(r.success_probability - 0.6) for r in recs]
        assert fits == sorted(fits, reverse=True)
