"""Module system: parameter discovery, modes, state dict round-trips."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor

RNG = np.random.default_rng(0)


def build_net():
    class Net(nn.Module):
        def __init__(self):
            super().__init__()
            self.fc1 = nn.Linear(4, 8, RNG)
            self.fc2 = nn.Linear(8, 2, RNG)
            self.drop = nn.Dropout(0.5, RNG)

        def forward(self, x):
            return self.fc2(self.drop(self.fc1(x).relu()))

    return Net()


class TestDiscovery:
    def test_named_parameters_paths(self):
        net = build_net()
        names = {name for name, _ in net.named_parameters()}
        assert names == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_parameter_count(self):
        net = build_net()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_modulelist_registers_children(self):
        mlp = nn.MLP([4, 8, 2], RNG)
        names = {name for name, _ in mlp.named_parameters()}
        assert "layers.item_0.weight" in names
        assert "layers.item_1.weight" in names

    def test_modules_iterates_depth(self):
        net = build_net()
        kinds = {type(m).__name__ for m in net.modules()}
        assert {"Net", "Linear", "Dropout"} <= kinds


class TestModes:
    def test_train_eval_propagate(self):
        net = build_net()
        net.eval()
        assert not net.drop.training
        net.train()
        assert net.drop.training

    def test_eval_disables_dropout(self):
        net = build_net().eval()
        x = Tensor(RNG.normal(size=(5, 4)))
        a = net(x).data
        b = net(x).data
        assert np.allclose(a, b)


class TestStateDict:
    def test_roundtrip(self):
        net_a, net_b = build_net(), build_net()
        net_b.load_state_dict(net_a.state_dict())
        x = Tensor(RNG.normal(size=(3, 4)))
        net_a.eval(), net_b.eval()
        assert np.allclose(net_a(x).data, net_b(x).data)

    def test_state_dict_is_a_copy(self):
        net = build_net()
        state = net.state_dict()
        state["fc1.weight"][...] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)

    def test_mismatched_keys_raise(self):
        net = build_net()
        state = net.state_dict()
        del state["fc1.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_mismatched_shape_raises(self):
        net = build_net()
        state = net.state_dict()
        state["fc1.bias"] = np.zeros(99)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_zero_grad_clears_all(self):
        net = build_net()
        x = Tensor(RNG.normal(size=(3, 4)))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())
