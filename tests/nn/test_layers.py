"""Layer correctness: Linear, Embedding, LayerNorm, MLP."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor
from repro.utils import gradcheck

RNG = np.random.default_rng(42)


class TestLinear:
    def test_shapes(self):
        layer = nn.Linear(4, 7, RNG)
        assert layer(Tensor(RNG.normal(size=(3, 4)))).shape == (3, 7)
        assert layer(Tensor(RNG.normal(size=(2, 5, 4)))).shape == (2, 5, 7)

    def test_no_bias(self):
        layer = nn.Linear(4, 7, RNG, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradcheck(self):
        layer = nn.Linear(3, 2, RNG)
        x = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        gradcheck(lambda t: (layer(t) ** 2).sum(), [x])

    def test_matches_manual_affine(self):
        layer = nn.Linear(3, 2, RNG)
        x = RNG.normal(size=(5, 3))
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)


class TestEmbedding:
    def test_lookup(self):
        emb = nn.Embedding(10, 6, RNG)
        out = emb(np.array([[1, 2, 3]]))
        assert out.shape == (1, 3, 6)
        assert np.allclose(out.data[0, 0], emb.weight.data[1])

    def test_out_of_range_raises(self):
        emb = nn.Embedding(5, 2, RNG)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))


class TestLayerNorm:
    def test_normalizes_moments(self):
        ln = nn.LayerNorm(16)
        x = Tensor(RNG.normal(loc=3.0, scale=5.0, size=(8, 16)))
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradcheck(self):
        ln = nn.LayerNorm(4)
        x = Tensor(RNG.normal(size=(2, 4)), requires_grad=True)
        gradcheck(lambda t: (ln(t) ** 2).sum(), [x], atol=1e-4)

    def test_learnable_scale_shift(self):
        ln = nn.LayerNorm(4)
        ln.gamma.data[...] = 2.0
        ln.beta.data[...] = 1.0
        x = Tensor(RNG.normal(size=(3, 4)))
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)


class TestMLP:
    def test_output_shape(self):
        mlp = nn.MLP([8, 16, 4, 1], RNG)
        assert mlp(Tensor(RNG.normal(size=(5, 8)))).shape == (5, 1)

    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            nn.MLP([4], RNG)

    def test_hidden_relu_applied(self):
        mlp = nn.MLP([2, 4, 1], RNG)
        for layer in mlp.layers:
            layer.weight.data[...] = -1.0
            layer.bias.data[...] = 0.0
        out = mlp(Tensor(np.ones((1, 2)))).data
        # hidden = relu(-2) = 0, output = 0 @ W + 0 = 0
        assert np.allclose(out, 0.0)

    def test_gradients_flow_to_all_layers(self):
        mlp = nn.MLP([3, 5, 2], RNG)
        x = Tensor(RNG.normal(size=(4, 3)))
        (mlp(x) ** 2).sum().backward()
        assert all(p.grad is not None for p in mlp.parameters())
