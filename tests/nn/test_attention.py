"""Attention: masking semantics, monotonic decay, masks helpers."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor

RNG = np.random.default_rng(5)


class TestMasks:
    def test_causal_strict_excludes_diagonal(self):
        m = nn.causal_mask(4, strict=True)
        assert not m[0].any()
        assert m[3, :3].all() and not m[3, 3]

    def test_causal_nonstrict_includes_diagonal(self):
        m = nn.causal_mask(3, strict=False)
        assert m[0, 0] and m[2, 2]

    def test_anti_causal_mirror(self):
        a = nn.anti_causal_mask(5, strict=True)
        c = nn.causal_mask(5, strict=True)
        assert np.array_equal(a, c.T)

    def test_strict_masks_partition(self):
        """strict causal + strict anti-causal + diagonal covers everything."""
        n = 6
        total = nn.causal_mask(n) | nn.anti_causal_mask(n) | np.eye(n, dtype=bool)
        assert total.all()


class TestMultiHeadAttention:
    def test_output_shape(self):
        att = nn.MultiHeadAttention(8, 2, RNG)
        x = Tensor(RNG.normal(size=(3, 5, 8)))
        assert att(x, x, x).shape == (3, 5, 8)

    def test_dim_not_divisible_raises(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(7, 2, RNG)

    def test_causal_mask_blocks_future(self):
        att = nn.MultiHeadAttention(4, 1, RNG)
        x = RNG.normal(size=(1, 6, 4))
        mask = nn.causal_mask(6, strict=True)
        base = att(Tensor(x), Tensor(x), Tensor(x), mask=mask).data.copy()
        perturbed = x.copy()
        perturbed[0, 5] += 10.0
        out = att(Tensor(perturbed), Tensor(perturbed), Tensor(perturbed),
                  mask=mask).data
        # Output at positions < 5 never attends to position 5.
        assert np.allclose(out[0, :5], base[0, :5])

    def test_fully_masked_row_gives_projected_zero(self):
        att = nn.MultiHeadAttention(4, 2, RNG)
        x = Tensor(RNG.normal(size=(1, 3, 4)))
        mask = nn.causal_mask(3, strict=True)  # row 0 has no allowed keys
        out = att(x, x, x, mask=mask).data
        # Zero context through the output projection = its bias.
        assert np.allclose(out[0, 0], att.out_proj.bias.data)

    def test_attention_weights_recorded(self):
        att = nn.MultiHeadAttention(4, 2, RNG)
        x = Tensor(RNG.normal(size=(2, 5, 4)))
        att(x, x, x)
        assert att.last_weights.shape == (2, 2, 5, 5)
        assert np.allclose(att.last_weights.sum(axis=-1), 1.0)

    def test_monotonic_decay_prefers_near_keys(self):
        """With a large decay, attention should concentrate near the query."""
        att = nn.MultiHeadAttention(4, 1, RNG, monotonic=True)
        att.decay.data[...] = 10.0  # softplus(10) ~ 10: strong decay
        # Make content uninformative so distance dominates.
        x = Tensor(np.ones((1, 8, 4)))
        att(x, x, x, mask=nn.causal_mask(8, strict=True))
        weights = att.last_weights[0, 0]
        # For the last query, the nearest allowed key (6) should dominate.
        assert weights[7].argmax() == 6
        assert weights[7, 6] > 0.99

    def test_monotonic_decay_trainable(self):
        att = nn.MultiHeadAttention(4, 2, RNG, monotonic=True)
        x = Tensor(RNG.normal(size=(1, 4, 4)))
        (att(x, x, x) ** 2).sum().backward()
        assert att.decay.grad is not None


class TestTransformer:
    def test_encoder_shapes(self):
        enc = nn.TransformerEncoder(8, 2, 3, RNG)
        x = Tensor(RNG.normal(size=(2, 5, 8)))
        assert enc(x).shape == (2, 5, 8)

    def test_positional_encoding_added(self):
        pe = nn.PositionalEncoding(10, 8)
        x = Tensor(np.zeros((1, 5, 8)))
        out = pe(x).data
        assert np.allclose(out[0], nn.sinusoidal_positions(5, 8))

    def test_positional_encoding_grows_past_initial_length(self):
        # The table is no longer a hard cap: longer inputs grow it on
        # demand, and the grown table is bit-identical to a fresh
        # sinusoid of the larger size (growth never perturbs encoding).
        pe = nn.PositionalEncoding(4, 8)
        out = pe(Tensor(np.zeros((1, 5, 8)))).data
        assert np.array_equal(out[0], nn.sinusoidal_positions(5, 8))
        assert pe._table.shape[0] >= 8  # geometric growth

    def test_positional_encoding_growth_is_prefix_exact(self):
        pe = nn.PositionalEncoding(4, 8)
        before = pe(Tensor(np.zeros((1, 4, 8)))).data.copy()
        pe.ensure(1000)
        after = pe(Tensor(np.zeros((1, 4, 8)))).data
        assert np.array_equal(before, after)
        assert np.array_equal(pe._table, nn.sinusoidal_positions(
            pe._table.shape[0], 8))

    def test_last_attention_weights_exposed(self):
        enc = nn.TransformerEncoder(8, 2, 2, RNG)
        x = Tensor(RNG.normal(size=(1, 4, 8)))
        enc(x)
        assert enc.last_attention_weights.shape == (1, 2, 4, 4)

    def test_gradients_flow_through_stack(self):
        enc = nn.TransformerEncoder(8, 2, 2, RNG)
        x = Tensor(RNG.normal(size=(2, 4, 8)), requires_grad=True)
        (enc(x) ** 2).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in enc.parameters())
