"""LSTM correctness: shapes, causality, reversal, gradients."""

import numpy as np

from repro import nn
from repro.tensor import Tensor
from repro.utils import gradcheck

RNG = np.random.default_rng(11)


class TestLSTMCell:
    def test_step_shapes(self):
        cell = nn.LSTMCell(4, 8, RNG)
        h, c = cell.initial_state(3)
        h2, c2 = cell(Tensor(RNG.normal(size=(3, 4))), (h, c))
        assert h2.shape == (3, 8) and c2.shape == (3, 8)

    def test_forget_bias_initialized_to_one(self):
        cell = nn.LSTMCell(4, 8, RNG)
        assert np.all(cell.bias.data[8:16] == 1.0)

    def test_state_changes_with_input(self):
        cell = nn.LSTMCell(2, 4, RNG)
        state = cell.initial_state(1)
        h1, _ = cell(Tensor([[1.0, 0.0]]), state)
        h2, _ = cell(Tensor([[0.0, 1.0]]), state)
        assert not np.allclose(h1.data, h2.data)


class TestLSTM:
    def test_output_shape(self):
        lstm = nn.LSTM(4, 6, RNG)
        out = lstm(Tensor(RNG.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 6)

    def test_forward_is_causal(self):
        """Changing input at step t must not affect outputs before t."""
        lstm = nn.LSTM(3, 5, RNG)
        x = RNG.normal(size=(1, 6, 3))
        base = lstm(Tensor(x)).data.copy()
        perturbed = x.copy()
        perturbed[0, 4] += 10.0
        out = lstm(Tensor(perturbed)).data
        assert np.allclose(out[0, :4], base[0, :4])
        assert not np.allclose(out[0, 4:], base[0, 4:])

    def test_reverse_is_anticausal(self):
        lstm = nn.LSTM(3, 5, RNG, reverse=True)
        x = RNG.normal(size=(1, 6, 3))
        base = lstm(Tensor(x)).data.copy()
        perturbed = x.copy()
        perturbed[0, 1] += 10.0
        out = lstm(Tensor(perturbed)).data
        # Positions after the perturbation (2..5) see nothing.
        assert np.allclose(out[0, 2:], base[0, 2:])
        assert not np.allclose(out[0, :2], base[0, :2])

    def test_gradcheck_small(self):
        lstm = nn.LSTM(2, 3, RNG)
        x = Tensor(RNG.normal(size=(1, 3, 2)), requires_grad=True)
        gradcheck(lambda t: (lstm(t) ** 2).sum(), [x], atol=1e-4)

    def test_gradients_reach_weights(self):
        lstm = nn.LSTM(2, 3, RNG)
        x = Tensor(RNG.normal(size=(2, 4, 2)))
        lstm(x).sum().backward()
        assert all(p.grad is not None for p in lstm.parameters())


class TestBiLSTM:
    def test_directions_differ(self):
        bi = nn.BiLSTM(3, 4, RNG)
        fwd, bwd = bi(Tensor(RNG.normal(size=(2, 5, 3))))
        assert fwd.shape == bwd.shape == (2, 5, 4)
        assert not np.allclose(fwd.data, bwd.data)

    def test_backward_stream_summarizes_suffix(self):
        bi = nn.BiLSTM(2, 4, RNG)
        x = RNG.normal(size=(1, 5, 2))
        _, bwd = bi(Tensor(x))
        base = bwd.data.copy()
        perturbed = x.copy()
        perturbed[0, 0] += 5.0  # first position
        _, bwd2 = bi(Tensor(perturbed))
        # backward stream at position >= 1 ignores position 0
        assert np.allclose(bwd2.data[0, 1:], base[0, 1:])


class TestMaskedLSTM:
    """Truncated masks must reproduce exact-length runs (up to gemm-shape
    ulps) — the invariant the multi-target fast path stands on."""

    def test_masked_rows_match_short_runs_exactly(self):
        from repro.tensor import no_grad
        lstm = nn.LSTM(3, 4, RNG)
        reverse = nn.LSTM(3, 4, RNG, reverse=True)
        x = RNG.normal(size=(2, 6, 3))
        mask = np.zeros((2, 6), dtype=bool)
        mask[0, :4] = True
        mask[1, :6] = True
        with no_grad():
            padded_fwd = lstm(Tensor(x), mask=mask).data
            padded_bwd = reverse(Tensor(x), mask=mask).data
            exact_fwd = lstm(Tensor(x[:1, :4])).data
            exact_bwd = reverse(Tensor(x[:1, :4])).data
        np.testing.assert_allclose(padded_fwd[0, :4], exact_fwd[0],
                                   rtol=0, atol=1e-12)
        np.testing.assert_allclose(padded_bwd[0, :4], exact_bwd[0],
                                   rtol=0, atol=1e-12)
        # Masked steps carry state: the reversed stream reaches the last
        # real position with its initial (zero) state intact.
        assert np.array_equal(padded_bwd[0, 4:], np.zeros((2, 4)))

    def test_graph_and_kernel_paths_agree(self):
        from repro.tensor import no_grad
        lstm = nn.LSTM(2, 3, RNG)
        x = RNG.normal(size=(3, 5, 2))
        mask = np.ones((3, 5), dtype=bool)
        mask[1, 3:] = False
        with no_grad():
            kernel = lstm(Tensor(x), mask=mask).data
            with nn.inference_kernel(False):
                graph = lstm(Tensor(x), mask=mask).data
        assert np.allclose(kernel, graph, atol=1e-12)

    def test_all_true_mask_matches_no_mask(self):
        from repro.tensor import no_grad
        lstm = nn.LSTM(2, 3, RNG)
        x = RNG.normal(size=(2, 4, 2))
        with no_grad():
            masked = lstm(Tensor(x), mask=np.ones((2, 4), dtype=bool)).data
            plain = lstm(Tensor(x)).data
        assert np.array_equal(masked, plain)
