"""Incremental forward-stream cache correctness.

The serving engine's warm-cache fast path must be *score-invisible*: any
interleaving of ``record()`` / ``score()`` calls — including checkpoint
reloads and LRU evictions mid-stream — produces the same scores as an
engine with caching disabled, which serves every request through the
batch re-encoding path the golden-parity suite pins to the paper's
protocol.  Hypothesis drives the interleavings; the explicit tests pin
the cache-lifecycle edges.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ENCODERS, RCKT, RCKTConfig
from repro.data import (SimulationConfig, StudentSimulator, build_dataset)
from repro.serve import InferenceEngine, ScoreQuery, ScoreRequest, is_error

ATOL = 1e-10

NUM_QUESTIONS = 30
NUM_CONCEPTS = 6


def make_model(encoder="dkt", **overrides):
    settings_ = dict(dim=8, layers=2, seed=11)
    settings_.update(overrides)
    return RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                RCKTConfig(encoder=encoder, **settings_))


def make_dataset(num_students=6, seed=9):
    config = SimulationConfig(num_students=num_students,
                              num_questions=NUM_QUESTIONS,
                              num_concepts=NUM_CONCEPTS,
                              sequence_length=(3, 10))
    simulator = StudentSimulator(config, seed=seed)
    return build_dataset("cache", simulator.simulate(seed=seed + 1),
                         NUM_QUESTIONS, NUM_CONCEPTS)


def paired_engines(model, **cached_kwargs):
    """(cached, cache-disabled) engines over the same model."""
    return (InferenceEngine(model, **cached_kwargs),
            InferenceEngine(model, stream_cache_bytes=0))


def score(engine, student, question_id, concept_ids) -> float:
    """Single score through the typed facade; errors surface as the
    legacy ValueError (same message — both paths share _id_error)."""
    reply = engine.service.execute(ScoreQuery(student, question_id,
                                              tuple(concept_ids)))
    if is_error(reply):
        raise ValueError(reply.message)
    return reply.score


def score_many(engine, requests) -> np.ndarray:
    replies = engine.service.execute_batch(
        [ScoreQuery(r.student_id, r.question_id, tuple(r.concept_ids))
         for r in requests])
    for reply in replies:
        if is_error(reply):
            raise ValueError(reply.message)
    return np.array([reply.score for reply in replies])


# Each event: (student, question, correct, concept, is_score_probe)
EVENT = st.tuples(st.integers(0, 3), st.integers(1, NUM_QUESTIONS),
                  st.integers(0, 1), st.integers(1, NUM_CONCEPTS),
                  st.booleans())


class TestInterleavedParityProperty:
    @settings(max_examples=20, deadline=None)
    @given(events=st.lists(EVENT, min_size=1, max_size=25))
    def test_dkt_interleavings_match_cold_engine(self, events):
        self.run_interleaving(make_model("dkt"), events)

    @settings(max_examples=6, deadline=None)
    @given(events=st.lists(EVENT, min_size=1, max_size=18))
    def test_sakt_interleavings_match_cold_engine(self, events):
        self.run_interleaving(make_model("sakt"), events)

    @settings(max_examples=6, deadline=None)
    @given(events=st.lists(EVENT, min_size=1, max_size=18))
    def test_akt_interleavings_match_cold_engine(self, events):
        self.run_interleaving(make_model("akt"), events)

    @settings(max_examples=8, deadline=None)
    @given(events=st.lists(EVENT, min_size=1, max_size=20))
    def test_tiny_lru_budget_never_changes_scores(self, events):
        # A budget this small evicts constantly; only throughput may
        # suffer, never scores.
        self.run_interleaving(make_model("dkt"), events,
                              stream_cache_bytes=4096)

    @settings(max_examples=8, deadline=None)
    @given(events=st.lists(EVENT, min_size=1, max_size=20))
    def test_mono_ablation_single_base_cache(self, events):
        self.run_interleaving(make_model("dkt", use_monotonicity=False),
                              events)

    @staticmethod
    def run_interleaving(model, events, **cached_kwargs):
        warm, cold = paired_engines(model, **cached_kwargs)
        for student, question, correct, concept, is_probe in events:
            if is_probe:
                got = score(warm, student, question, (concept,))
                expected = score(cold, student, question, (concept,))
                assert abs(got - expected) < ATOL
            else:
                warm.record(student, question, correct, (concept,))
                cold.record(student, question, correct, (concept,))
        # Final sweep: every student's next-step probe must agree too.
        requests = [ScoreRequest(s, 5, (2,)) for s in range(4)]
        np.testing.assert_allclose(score_many(warm, requests),
                                   score_many(cold, requests),
                                   rtol=0, atol=ATOL)


@pytest.mark.parametrize("encoder", ENCODERS)
class TestCacheLifecycle:
    def test_warm_path_actually_serves_hits(self, encoder):
        engine = InferenceEngine(make_model(encoder))
        for step in range(4):
            engine.record("s", 1 + step, step % 2, (1 + step % 5,))
        score(engine, "s", 7, (3,))   # cold: builds the cache
        score(engine, "s", 9, (2,))   # warm: must hit
        stats = engine.stream_cache_stats()
        assert stats["entries"] == 1
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_record_extends_instead_of_rebuilding(self, encoder):
        engine = InferenceEngine(make_model(encoder))
        engine.record("s", 3, 1, (1,))
        score(engine, "s", 7, (3,))
        misses_after_build = engine.stream_cache_stats()["misses"]
        engine.record("s", 4, 0, (2,))
        score(engine, "s", 7, (3,))
        assert engine.stream_cache_stats()["misses"] == misses_after_build

    def test_eviction_mid_stream_recovers(self, encoder):
        model = make_model(encoder)
        warm, cold = paired_engines(model, stream_cache_bytes=1)
        for student in range(3):
            for step in range(4):
                warm.record(student, 1 + step, step % 2, (1 + step,))
                cold.record(student, 1 + step, step % 2, (1 + step,))
        requests = [ScoreRequest(s, 6, (2,)) for s in range(3)]
        np.testing.assert_allclose(score_many(warm, requests),
                                   score_many(cold, requests),
                                   rtol=0, atol=ATOL)
        stats = warm.stream_cache_stats()
        assert stats["evictions"] >= 1
        assert stats["entries"] == 0   # budget of 1 byte keeps nothing

    def test_bulk_load_invalidates_stale_cache(self, encoder):
        model = make_model(encoder)
        dataset = make_dataset()
        warm, cold = paired_engines(model)
        warm.load_dataset(dataset)
        cold.load_dataset(dataset)
        student = list(dataset)[0].student_id
        score(warm, student, 5, (1,))          # builds a cache
        warm.load_dataset(dataset)            # appends: cache is stale
        cold.load_dataset(dataset)
        assert abs(score(warm, student, 5, (1,))
                   - score(cold, student, 5, (1,))) < ATOL


class TestCheckpointReload:
    def build_trained_pair(self, tmp_path):
        old = make_model(seed=1)
        new = make_model(seed=2)   # same architecture, different weights
        path = tmp_path / "new.npz"
        InferenceEngine(new).save(path)
        return old, new, path

    def test_reload_invalidates_and_matches_fresh_engine(self, tmp_path):
        old, new, path = self.build_trained_pair(tmp_path)
        engine = InferenceEngine(old)
        fresh = InferenceEngine(new, stream_cache_bytes=0)
        for step in range(5):
            engine.record("s", 1 + step, step % 2, (1 + step % 5,))
            fresh.record("s", 1 + step, step % 2, (1 + step % 5,))
        stale_score = score(engine, "s", 8, (4,))   # warms the cache
        assert engine.stream_cache_stats()["entries"] == 1
        engine.reload_checkpoint(path)
        assert engine.stream_cache_stats()["entries"] == 0
        reloaded_score = score(engine, "s", 8, (4,))
        assert abs(reloaded_score - score(fresh, "s", 8, (4,))) < ATOL
        assert reloaded_score != stale_score

    def test_reload_mid_stream_then_extend(self, tmp_path):
        old, new, path = self.build_trained_pair(tmp_path)
        engine = InferenceEngine(old)
        fresh = InferenceEngine(new, stream_cache_bytes=0)
        for step in range(3):
            engine.record("s", 1 + step, 1, (1,))
            fresh.record("s", 1 + step, 1, (1,))
        score(engine, "s", 2, (1,))
        engine.reload_checkpoint(path)
        # Post-reload records must extend a rebuilt cache, not the stale
        # one.
        engine.record("s", 9, 0, (2,))
        fresh.record("s", 9, 0, (2,))
        score(engine, "s", 2, (1,))   # rebuild under new weights
        engine.record("s", 10, 1, (3,))
        fresh.record("s", 10, 1, (3,))
        assert abs(score(engine, "s", 2, (1,))
                   - score(fresh, "s", 2, (1,))) < ATOL

    def test_reload_rejects_mismatched_config(self, tmp_path):
        engine = InferenceEngine(make_model(dim=8))
        other = InferenceEngine(make_model(dim=8, layers=1))
        path = tmp_path / "other.npz"
        other.save(path)
        with pytest.raises(ValueError, match="different model config"):
            engine.reload_checkpoint(path)


class TestValidationHardening:
    def test_record_rejects_out_of_vocab_without_poisoning(self):
        engine = InferenceEngine(make_model())
        engine.record("s", 1, 1, (1,))
        before = score(engine, "s", 3, (1,))
        with pytest.raises(ValueError, match="question_id"):
            engine.record("s", NUM_QUESTIONS + 1, 1, (1,))
        with pytest.raises(ValueError, match="concept id"):
            engine.record("s", 1, 1, (NUM_CONCEPTS + 1,))
        with pytest.raises(ValueError, match="correct must be 0 or 1"):
            engine.record("s", 1, 2, (1,))
        with pytest.raises(ValueError, match="non-empty"):
            engine.record("s", 1, 1, ())
        with pytest.raises(ValueError, match="non-empty"):
            score(engine, "s", 3, ())
        assert engine.history_length("s") == 1
        assert score(engine, "s", 3, (1,)) == before

    def test_load_dataset_validates_before_loading_anything(self):
        # A model with a smaller vocabulary than the dataset was built
        # against: every sequence is out of range.
        small = RCKT(3, 2, RCKTConfig(encoder="dkt", dim=8, layers=1,
                                      seed=1))
        engine = InferenceEngine(small)
        dataset = make_dataset()
        with pytest.raises(ValueError, match="outside the"):
            engine.load_dataset(dataset)
        assert len(engine.students) == 0

    def test_score_and_record_report_the_same_error(self):
        engine = InferenceEngine(make_model())
        with pytest.raises(ValueError) as record_error:
            engine.record("s", NUM_QUESTIONS + 7, 1, (1,))
        with pytest.raises(ValueError) as score_error:
            score(engine, "s", NUM_QUESTIONS + 7, (1,))
        assert str(record_error.value) == str(score_error.value)


class TestWorkers:
    def test_threaded_engine_matches_sequential(self):
        model = make_model()
        dataset = make_dataset(num_students=8)
        threaded = InferenceEngine(model, workers=3, target_batch=4)
        sequential = InferenceEngine(model, target_batch=4)
        threaded.load_dataset(dataset)
        sequential.load_dataset(dataset)
        requests = [ScoreRequest(s.student_id, 1 + k % NUM_QUESTIONS,
                                 (1 + k % NUM_CONCEPTS,))
                    for k, s in enumerate(dataset)]
        np.testing.assert_allclose(score_many(threaded, requests),
                                   score_many(sequential, requests),
                                   rtol=0, atol=0)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            InferenceEngine(make_model(), workers=0)


@pytest.mark.slow
@pytest.mark.parametrize("encoder", ENCODERS)
def test_long_interleaving_parity_slow(encoder):
    """Opt-in (pytest -m slow): hundreds of interleaved record/score
    events per encoder, with a mid-stream eviction-heavy budget."""
    rng = np.random.default_rng(31)
    model = make_model(encoder, dim=16)
    warm, cold = paired_engines(model, stream_cache_bytes=64 * 1024)
    for step in range(300):
        student = int(rng.integers(0, 8))
        if rng.random() < 0.35:
            question = int(rng.integers(1, NUM_QUESTIONS + 1))
            concept = int(rng.integers(1, NUM_CONCEPTS + 1))
            got = score(warm, student, question, (concept,))
            expected = score(cold, student, question, (concept,))
            assert abs(got - expected) < ATOL, f"step {step}"
        else:
            question = int(rng.integers(1, NUM_QUESTIONS + 1))
            correct = int(rng.integers(0, 2))
            concepts = tuple(sorted(set(
                int(c) for c in rng.integers(1, NUM_CONCEPTS + 1,
                                             size=rng.integers(1, 3)))))
            warm.record(student, question, correct, concepts)
            cold.record(student, question, correct, concepts)
