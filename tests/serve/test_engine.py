"""The serving engine: history caching, micro-batching, checkpoints."""

import numpy as np
import pytest

from repro.core import RCKT, RCKTConfig
from repro.data import (Interaction, SimulationConfig, StudentSequence,
                        StudentSimulator, build_dataset, collate)
from repro.interpret import recommend_questions
from repro.serve import (HistoryStore, InferenceEngine, PendingScore,
                         ScoreRequest, StudentHistory)


@pytest.fixture(scope="module")
def dataset():
    config = SimulationConfig(num_students=10, num_questions=50,
                              num_concepts=8, sequence_length=(5, 16))
    simulator = StudentSimulator(config, seed=5)
    return build_dataset("serve", simulator.simulate(seed=6),
                         config.num_questions, config.num_concepts)


@pytest.fixture(scope="module")
def model(dataset):
    return RCKT(dataset.num_questions, dataset.num_concepts,
                RCKTConfig(encoder="dkt", dim=8, layers=2, seed=3))


@pytest.fixture()
def engine(model, dataset):
    engine = InferenceEngine(model, max_batch=4)
    engine.load_dataset(dataset)
    return engine


def legacy(method, *args, **kwargs):
    """Exercise a deprecated engine shim, asserting it still warns.

    The suite-wide filter turns unasserted shim warnings into errors;
    these tests cover the legacy surface on purpose.
    """
    with pytest.warns(DeprecationWarning, match="deprecated"):
        return method(*args, **kwargs)


def seed_idiom_score(model, sequence, question_id, concept_ids):
    """The pre-engine serving path: one collated probe row per request."""
    probe = Interaction(question_id, 1, tuple(concept_ids))
    extended = StudentSequence(sequence.student_id,
                               list(sequence.interactions) + [probe])
    return model.predict_scores(collate([extended]),
                                np.array([len(extended) - 1]))[0]


class TestStudentHistory:
    def test_growth_past_initial_capacity(self):
        history = StudentHistory("s")
        for step in range(1, 2 * StudentHistory.INITIAL_CAPACITY + 2):
            history.append(step, step % 2, (1 + step % 3,))
        assert history.length == 2 * StudentHistory.INITIAL_CAPACITY + 1
        questions, responses, _, _ = history.view()
        assert questions[0] == 1 and questions[-1] == history.length
        assert responses.tolist() == [s % 2 for s in
                                      range(1, history.length + 1)]

    def test_concept_width_expands(self):
        history = StudentHistory("s")
        history.append(1, 1, (2,))
        history.append(2, 0, (1, 3, 4))
        _, _, concepts, counts = history.view()
        assert concepts.shape[1] == 3
        assert counts.tolist() == [1, 3]
        assert concepts[0].tolist() == [2, 0, 0]

    def test_validation(self):
        history = StudentHistory("s")
        with pytest.raises(ValueError):
            history.append(0, 1, (1,))
        with pytest.raises(ValueError):
            history.append(1, 2, (1,))
        with pytest.raises(ValueError):
            history.append(1, 1, ())

    def test_roundtrip_to_sequence(self):
        history = StudentHistory(7)
        history.append(3, 1, (2, 5))
        history.append(9, 0, (1,))
        sequence = history.to_sequence()
        assert [i.question_id for i in sequence] == [3, 9]
        assert [i.concept_ids for i in sequence] == [(2, 5), (1,)]


class TestHistoryStoreAssembly:
    def test_ragged_batch_with_probes(self):
        store = HistoryStore()
        store.record("a", 1, 1, (1,))
        store.record("a", 2, 0, (2,))
        store.record("b", 3, 1, (1, 2))
        batch, cols = store.assemble(["a", "b"],
                                     probes=[(5, (3,)), (6, (1,))])
        assert batch.questions.shape == (2, 3)
        assert cols.tolist() == [2, 1]
        assert batch.questions[0].tolist() == [1, 2, 5]
        assert batch.questions[1, :2].tolist() == [3, 6]
        assert batch.mask.tolist() == [[True, True, True],
                                       [True, True, False]]

    def test_empty_student_needs_probe(self):
        store = HistoryStore()
        with pytest.raises(ValueError, match="no history"):
            store.assemble(["ghost"])
        batch, cols = store.assemble(["ghost"], probes=[(4, (1,))])
        assert cols.tolist() == [0]


class TestScoring:
    def test_matches_seed_serving_idiom(self, engine, model, dataset):
        for sequence in list(dataset)[:4]:
            reference = seed_idiom_score(model, sequence, 7, (3,))
            assert abs(legacy(engine.score, sequence.student_id, 7, (3,))
                       - reference) < 1e-10

    def test_score_batch_mixed_students(self, engine, model, dataset):
        sequences = list(dataset)
        requests = [ScoreRequest(s.student_id, 1 + k % 50, (1 + k % 8,))
                    for k, s in enumerate(sequences)]
        scores = legacy(engine.score_batch, requests)
        for request, score, sequence in zip(requests, scores, sequences):
            reference = seed_idiom_score(model, sequence,
                                         request.question_id,
                                         request.concept_ids)
            assert abs(score - reference) < 1e-10

    def test_empty_history_is_neutral(self, engine):
        assert legacy(engine.score, "brand-new", 3, (1,)) == 0.5

    def test_out_of_vocabulary_ids_rejected(self, engine):
        with pytest.raises(ValueError, match="question_id 9999"):
            legacy(engine.score, "anyone", 9999, (1,))
        with pytest.raises(ValueError, match="concept id 999"):
            legacy(engine.score, "anyone", 3, (999,))
        with pytest.raises(ValueError, match="question_id 0"):
            engine.record("anyone", 0, 1, (1,))

    def test_read_paths_do_not_pollute_the_store(self, engine):
        before = len(engine.students)
        legacy(engine.score, "who-is-this", 3, (1,))
        assert engine.history_length("who-is-this") == 0
        with pytest.raises(ValueError):
            legacy(engine.influences, "nor-this-one")
        assert len(engine.students) == before

    def test_record_changes_scores(self, engine):
        before = legacy(engine.score, "learner", 5, (2,))
        for _ in range(4):
            engine.record("learner", 5, 1, (2,))
        after = legacy(engine.score, "learner", 5, (2,))
        assert engine.history_length("learner") == 4
        assert before == 0.5 and after != before


class TestMicroBatching:
    def test_submit_flush_lifecycle(self, engine, dataset):
        sequences = list(dataset)[:3]
        handles = [legacy(engine.submit, ScoreRequest(s.student_id, 9, (4,)))
                   for s in sequences]
        assert all(isinstance(h, PendingScore) and not h.done
                   for h in handles)
        with pytest.raises(RuntimeError, match="not flushed"):
            _ = handles[0].value
        legacy(engine.flush)
        assert all(h.done for h in handles)
        direct = legacy(engine.score_batch, [h.request for h in handles])
        np.testing.assert_allclose([h.value for h in handles], direct,
                                   rtol=0, atol=0)

    def test_auto_flush_at_max_batch(self, engine, dataset):
        sequences = list(dataset)[:4]  # max_batch = 4
        handles = [legacy(engine.submit, ScoreRequest(s.student_id, 2, (1,)))
                   for s in sequences]
        assert all(h.done for h in handles)

    def test_flush_empty_queue(self, engine):
        assert legacy(engine.flush) == []

    def test_invalid_submit_rejected_without_poisoning_queue(self, engine,
                                                             dataset):
        good = legacy(engine.submit, ScoreRequest(list(dataset)[0].student_id,
                                                  2, (1,)))
        with pytest.raises(ValueError, match="question_id 9999"):
            legacy(engine.submit, ScoreRequest("x", 9999, (1,)))
        legacy(engine.flush)
        assert good.done


class TestCheckpointRoundtrip:
    def test_scores_survive_save_load(self, engine, dataset, tmp_path):
        path = tmp_path / "engine.npz"
        engine.save(path)
        restored = InferenceEngine.from_checkpoint(path)
        restored.load_dataset(dataset)
        student = list(dataset)[0].student_id
        assert legacy(restored.score, student, 7, (3,)) == \
            legacy(engine.score, student, 7, (3,))

    def test_missing_metadata_rejected(self, model, tmp_path):
        from repro.utils import save_checkpoint
        path = tmp_path / "bare.npz"
        save_checkpoint(path, model.state_dict(), {"config":
                                                   model.config.__dict__})
        with pytest.raises(ValueError, match="engine metadata"):
            InferenceEngine.from_checkpoint(path)


class TestInterpretation:
    def test_influences_endpoint(self, engine, dataset):
        sequence = next(s for s in dataset if len(s) >= 4)
        influence = legacy(engine.influences, sequence.student_id)
        assert influence.scores.shape == (1,)
        assert influence.history_lengths[0] == len(sequence) - 1

    def test_influences_need_history(self, engine):
        with pytest.raises(ValueError, match="at least two"):
            legacy(engine.influences, "brand-new-2")

    def test_recommend_matches_seed_implementation(self, engine, model,
                                                   dataset):
        sequence = next(s for s in dataset if len(s) >= 6)
        candidates = [ScoreRequest(sequence.student_id, q, (1 + q % 8,))
                      for q in (3, 11, 27, 40)]
        batched = legacy(engine.recommend, sequence.student_id, candidates,
                         top_k=4)
        probes = [Interaction(c.question_id, 1, c.concept_ids)
                  for c in candidates]
        reference = recommend_questions(model, sequence, probes, top_k=4)
        assert [r.question_id for r in batched] == \
            [r.question_id for r in reference]
        for mine, ref in zip(batched, reference):
            assert abs(mine.score - ref.score) < 1e-10
            assert abs(mine.success_probability
                       - ref.success_probability) < 1e-10
            assert abs(mine.value - ref.value) < 1e-10
