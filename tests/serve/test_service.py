"""The typed Service facade: parity, scheduler coalescing, taxonomy, shims."""

import numpy as np
import pytest

from repro.core import ENCODERS, RCKT, RCKTConfig
from repro.core.masking import window_start
from repro.data import (Interaction, SimulationConfig, StudentSequence,
                        StudentSimulator, build_dataset, collate)
from repro.serve import (BatchEnvelope, CandidateQuestion, EmptyHistory,
                         ExplainQuery, HistoryEdit, InferenceEngine,
                         InternalError, InvalidConcept, InvalidEdit,
                         InvalidQuestion, MalformedQuery, ModelNotLoaded,
                         ModelRegistry, RecommendQuery, RecordEvent,
                         ScoreQuery, ScoreRequest, Service, UnknownStudent,
                         WhatIfQuery)

ATOL = 1e-10
NUM_QUESTIONS = 40
NUM_CONCEPTS = 6


def make_dataset(num_students=6, seed=11):
    config = SimulationConfig(num_students=num_students,
                              num_questions=NUM_QUESTIONS,
                              num_concepts=NUM_CONCEPTS,
                              sequence_length=(5, 14))
    simulator = StudentSimulator(config, seed=seed)
    return build_dataset("svc", simulator.simulate(seed=seed + 1),
                         NUM_QUESTIONS, NUM_CONCEPTS)


def make_model(encoder="dkt", dim=8, layers=1, seed=3):
    return RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                RCKTConfig(encoder=encoder, dim=dim, layers=layers,
                           seed=seed))


def seed_idiom_score(model, interactions, question_id, concept_ids):
    """Golden reference: one collated probe row, the pre-engine path."""
    probe = Interaction(question_id, 1, tuple(concept_ids))
    sequence = StudentSequence("ref", list(interactions) + [probe])
    batch = collate([sequence])
    return float(model.predict_scores(batch,
                                      np.array([len(sequence) - 1]))[0])



def legacy(method, *args, **kwargs):
    """Exercise a deprecated engine shim, asserting it still warns."""
    with pytest.warns(DeprecationWarning, match="deprecated"):
        return method(*args, **kwargs)


@pytest.fixture(scope="module")
def dataset():
    return make_dataset()


@pytest.fixture(scope="module")
def model(dataset):
    return make_model()


@pytest.fixture()
def service(model, dataset):
    engine = InferenceEngine(model, max_batch=8)
    engine.load_dataset(dataset)
    return Service(engine)


# ---------------------------------------------------------------------------
# Parity: facade vs golden references (all encoders, windowed + not)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("encoder", ENCODERS)
@pytest.mark.parametrize("window", [None, 6])
class TestParity:
    def _service(self, encoder, window, dataset):
        engine = InferenceEngine(make_model(encoder), window=window)
        engine.load_dataset(dataset)
        return Service(engine), engine

    def test_scores_match_seed_idiom(self, encoder, window, dataset):
        service, engine = self._service(encoder, window, dataset)
        for sequence in list(dataset)[:3]:
            question = 1 + len(sequence) % NUM_QUESTIONS
            reply = service.execute(ScoreQuery(sequence.student_id,
                                               question, (2,)))
            start = window_start(len(sequence), window, engine.window_hop)
            reference = seed_idiom_score(
                engine.model, list(sequence.interactions)[start:],
                question, (2,))
            assert abs(reply.score - reference) < ATOL

    def test_influences_match_direct_model_call(self, encoder, window,
                                                dataset):
        service, engine = self._service(encoder, window, dataset)
        sequence = next(s for s in dataset if len(s) >= 8)
        reply = service.execute(ExplainQuery(sequence.student_id))
        start = window_start(len(sequence) - 1, window, engine.window_hop)
        windowed = StudentSequence(
            "ref", list(sequence.interactions)[start:])
        batch = collate([windowed])
        from repro.tensor import no_grad
        with no_grad():
            direct = engine.model.influences(
                batch, np.array([len(windowed) - 1]))
        assert abs(reply.score - float(direct.scores[0])) < ATOL
        # Per-position deltas: itemized influences line up with the
        # direct computation's grids position by position.
        deltas = np.where(
            batch.responses[0, :len(windowed) - 1] == 1,
            direct.correct_deltas.data[0, :len(windowed) - 1],
            direct.incorrect_deltas.data[0, :len(windowed) - 1])
        assert len(reply.influences) == len(windowed) - 1
        for item, expected in zip(reply.influences, deltas):
            assert abs(item.influence - expected) < ATOL
        # Absolute positions survive the window re-basing.
        assert [item.position for item in reply.influences] == \
            list(range(start, len(sequence) - 1))

    def test_what_if_matches_from_scratch_rescore(self, encoder, window,
                                                  dataset):
        service, engine = self._service(encoder, window, dataset)
        sequence = next(s for s in dataset if len(s) >= 8)
        edits = (HistoryEdit(0, "flip"), HistoryEdit(3, "set", value=0),
                 HistoryEdit(5, "remove"))
        reply = service.execute(WhatIfQuery(sequence.student_id, 9, (1,),
                                            edits))
        interactions = list(sequence.interactions)
        flipped = interactions[0]
        interactions[0] = Interaction(flipped.question_id,
                                      1 - flipped.correct,
                                      flipped.concept_ids)
        third = interactions[3]
        interactions[3] = Interaction(third.question_id, 0,
                                      third.concept_ids)
        del interactions[5]
        start = window_start(len(interactions), window, engine.window_hop)
        reference = seed_idiom_score(engine.model, interactions[start:],
                                     9, (1,))
        assert abs(reply.score - reference) < ATOL
        base_start = window_start(len(sequence), window, engine.window_hop)
        baseline = seed_idiom_score(
            engine.model, list(sequence.interactions)[base_start:], 9, (1,))
        assert abs(reply.baseline_score - baseline) < ATOL


# ---------------------------------------------------------------------------
# Scheduler: mixed-type coalescing into one shared forward-stream batch
# ---------------------------------------------------------------------------
class TestMixedBatchCoalescing:
    def _counting(self, engine, monkeypatch):
        counts = {"capture": 0, "forward": 0}
        encoder = engine.model.generator.encoder
        real_capture = encoder.forward_stream_with_capture
        real_forward = encoder.forward_stream

        def capture(*args, **kwargs):
            counts["capture"] += 1
            return real_capture(*args, **kwargs)

        def forward(*args, **kwargs):
            counts["forward"] += 1
            return real_forward(*args, **kwargs)

        monkeypatch.setattr(encoder, "forward_stream_with_capture", capture)
        monkeypatch.setattr(encoder, "forward_stream", forward)
        return counts

    def _mixed_queries(self, dataset):
        students = [s.student_id for s in dataset]
        return [
            ScoreQuery(students[0], 7, (3,)),
            ExplainQuery(students[0]),
            WhatIfQuery(students[1], 9, (1,), (HistoryEdit(1, "flip"),)),
            ScoreQuery(students[1], 2, (1,)),
            ScoreQuery(students[2], 5, (2,)),
        ]

    def test_single_shared_forward_batch_cold(self, service, dataset,
                                              monkeypatch):
        counts = self._counting(service.engine(), monkeypatch)
        replies = service.execute_batch(self._mixed_queries(dataset))
        assert all(reply.ok for reply in replies)
        # Every cold student *and* the edited timeline warm-built in one
        # stacked capture pass; no separate forward-stream encodings.
        assert counts["capture"] == 1
        assert counts["forward"] == 0

    def test_warm_flush_runs_no_forward_streams(self, service, dataset,
                                                monkeypatch):
        service.execute_batch(self._mixed_queries(dataset))  # warm caches
        counts = self._counting(service.engine(), monkeypatch)
        replies = service.execute_batch([
            ScoreQuery(list(dataset)[0].student_id, 7, (3,)),
            ExplainQuery(list(dataset)[0].student_id),
            ScoreQuery(list(dataset)[2].student_id, 5, (2,)),
        ])
        assert all(reply.ok for reply in replies)
        assert counts["capture"] == 0 and counts["forward"] == 0

    def test_recommend_probes_ride_the_shared_batch(self, service,
                                                    dataset, monkeypatch):
        """Success-probability probes are coalesced: a mixed batch with
        a recommend does exactly the forward work the recommend alone
        does (its value worlds) — zero extra passes for the probes."""
        student = next(s for s in dataset if len(s) >= 4).student_id
        recommend = RecommendQuery(
            student, (CandidateQuestion(3, (1,)),
                      CandidateQuestion(9, (2,))), top_k=2, horizon=2)
        # Warm every cache first (score + recommend probe share a slot).
        assert service.execute(recommend).ok
        counts = self._counting(service.engine(), monkeypatch)
        assert service.execute_batch([recommend])[0].ok
        alone = dict(counts)
        assert alone["capture"] == 0   # warm probes: no warm-up pass
        counts["capture"] = counts["forward"] = 0
        replies = service.execute_batch([
            ScoreQuery(student, 7, (3,)),
            ExplainQuery(student),
            recommend,
        ])
        assert all(reply.ok for reply in replies)
        assert dict(counts) == alone

    def test_cold_recommend_shares_the_single_warmup_pass(self, service,
                                                          dataset,
                                                          monkeypatch):
        counts = self._counting(service.engine(), monkeypatch)
        students = [s.student_id for s in dataset]
        replies = service.execute_batch([
            ScoreQuery(students[0], 7, (3,)),
            RecommendQuery(students[1],
                           (CandidateQuestion(3, (1,)),
                            CandidateQuestion(9, (2,))), horizon=2),
            ExplainQuery(students[2]),
        ])
        assert all(reply.ok for reply in replies)
        # Cold score rows, recommend probe rows, and the explain target
        # all warm-build in ONE stacked capture pass; the only other
        # encoder work is the recommend's value worlds.
        assert counts["capture"] == 1

    def test_mixed_batch_matches_individual_execution(self, model,
                                                      dataset):
        engine_a = InferenceEngine(model)
        engine_a.load_dataset(dataset)
        engine_b = InferenceEngine(model)
        engine_b.load_dataset(dataset)
        queries = self._mixed_queries(dataset)
        batched = Service(engine_a).execute_batch(BatchEnvelope(
            tuple(queries)))
        single = [Service(engine_b).execute(query) for query in queries]
        for one, many in zip(single, batched):
            assert type(one) is type(many)
            for attribute in ("score", "baseline_score"):
                if hasattr(one, attribute):
                    assert abs(getattr(one, attribute)
                               - getattr(many, attribute)) < ATOL

    def test_cached_and_uncached_service_agree(self, model, dataset):
        cached = InferenceEngine(model)
        cached.load_dataset(dataset)
        uncached = InferenceEngine(model, stream_cache_bytes=0)
        uncached.load_dataset(dataset)
        queries = self._mixed_queries(dataset)
        warm = Service(cached).execute_batch(queries)
        cold = Service(uncached).execute_batch(queries)
        for a, b in zip(warm, cold):
            if hasattr(a, "score"):
                assert abs(a.score - b.score) < ATOL

    def test_records_apply_before_reads(self, model, dataset):
        engine = InferenceEngine(model)
        engine.load_dataset(dataset)
        service = Service(engine)
        student = list(dataset)[0].student_id
        replies = service.execute_batch([
            ScoreQuery(student, 7, (3,)),
            RecordEvent(student, 4, 1, (2,)),
        ])
        # The score observes the post-record snapshot even though it
        # precedes the record in the envelope.
        after = service.execute(ScoreQuery(student, 7, (3,)))
        assert replies[0].score == after.score
        assert replies[1].history_length == engine.history_length(student)


# ---------------------------------------------------------------------------
# Error taxonomy (facade surface)
# ---------------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_invalid_question(self, service):
        reply = service.execute(ScoreQuery("amy", 9999, (1,)))
        assert isinstance(reply, InvalidQuestion)
        assert reply.code == "invalid_question" and not reply.ok
        assert "9999" in reply.message and "model 'default'" in reply.message
        assert tuple(reply.detail("valid_range")) == (1, NUM_QUESTIONS)

    def test_invalid_concept_and_empty_set(self, service):
        reply = service.execute(ScoreQuery("amy", 3, (999,)))
        assert isinstance(reply, InvalidConcept)
        empty = service.execute(ScoreQuery("amy", 3, ()))
        assert isinstance(empty, InvalidConcept)
        assert "non-empty" in empty.message

    def test_unknown_student(self, service):
        for query in (ExplainQuery("ghost"),
                      WhatIfQuery("ghost", 3, (1,),
                                  (HistoryEdit(0, "flip"),))):
            reply = service.execute(query)
            assert isinstance(reply, UnknownStudent)
            assert "ghost" in reply.message

    def test_empty_history_explain(self, service):
        engine = service.engine()
        engine.record("newbie", 3, 1, (1,))
        reply = service.execute(ExplainQuery("newbie"))
        assert isinstance(reply, EmptyHistory)
        assert "at least two" in reply.message

    def test_empty_history_recommend(self, service):
        reply = service.execute(RecommendQuery(
            "ghost", (CandidateQuestion(3, (1,)),)))
        assert isinstance(reply, EmptyHistory)

    def test_invalid_edits(self, service, dataset):
        student = list(dataset)[0].student_id
        cases = [
            (HistoryEdit(99, "flip"), "position"),
            (HistoryEdit(0, "teleport"), "op"),
            (HistoryEdit(0, "set"), "value"),
        ]
        for edit, fragment in cases:
            reply = service.execute(WhatIfQuery(student, 3, (1,), (edit,)))
            assert isinstance(reply, InvalidEdit)
            assert fragment in reply.message

    def test_duplicate_edit_positions_rejected(self, service, dataset):
        # Positions index the pre-edit history; two edits at one
        # position would silently edit whatever slid into the slot.
        student = list(dataset)[0].student_id
        reply = service.execute(WhatIfQuery(
            student, 3, (1,),
            (HistoryEdit(2, "remove"), HistoryEdit(2, "remove"))))
        assert isinstance(reply, InvalidEdit)
        assert "duplicate" in reply.message

    def test_model_not_loaded(self, service):
        reply = service.execute(ScoreQuery("amy", 3, (1,), model="nope"))
        assert isinstance(reply, ModelNotLoaded)
        assert "nope" in reply.message and "default" in str(reply.details)

    def test_mid_flight_unregister_yields_model_not_loaded(self, model,
                                                           dataset):
        registry = ModelRegistry()
        registry.register("prod", InferenceEngine(model))
        service = Service(registry=registry)
        service.engine("prod").load_dataset(dataset)
        student = list(dataset)[0].student_id
        assert service.execute(ScoreQuery(student, 3, (1,),
                                          model="prod")).ok
        registry.unregister("prod")
        reply = service.execute(ScoreQuery(student, 3, (1,), model="prod"))
        assert isinstance(reply, ModelNotLoaded)

    def test_malformed_values(self, service):
        bad_correct = service.execute(RecordEvent("amy", 3, 7, (1,)))
        assert isinstance(bad_correct, MalformedQuery)
        assert "correct must be 0 or 1" in bad_correct.message
        not_a_query = service.execute_batch([object()])[0]
        assert isinstance(not_a_query, MalformedQuery)
        nested = service.execute_batch(
            [BatchEnvelope((ScoreQuery("amy", 3, (1,)),))])[0]
        assert isinstance(nested, MalformedQuery)

    def test_execute_accepts_an_envelope(self, service, dataset):
        # A whole envelope through execute() (the /v1/query route's
        # view) answers with a BatchReply, not a nesting complaint.
        from repro.serve import BatchReply
        student = list(dataset)[0].student_id
        reply = service.execute(BatchEnvelope((
            ScoreQuery(student, 3, (1,)),
            ExplainQuery(student),
        )))
        assert isinstance(reply, BatchReply)
        assert all(inner.ok for inner in reply.replies)

    def test_ill_typed_wire_values_become_taxonomy_errors(self, service,
                                                          dataset):
        # JSON can carry any type: structurally valid queries with
        # ill-typed values must come back as error values, never raise
        # out of the facade or poison batch siblings.
        student = list(dataset)[0].student_id
        replies = service.execute_batch([
            RecordEvent(student, "7", 1, (1,)),
            ScoreQuery(student, 3, ("x",)),
            RecommendQuery(student, (CandidateQuestion(3, (1,)),),
                           top_k="five"),
            WhatIfQuery(student, 3, (1,), (HistoryEdit("0", "flip"),)),
            ScoreQuery(student, 3, (1,)),
        ])
        assert isinstance(replies[0], InvalidQuestion)
        assert "integer" in replies[0].message
        assert isinstance(replies[1], InvalidConcept)
        assert isinstance(replies[2], MalformedQuery)
        assert isinstance(replies[3], InvalidEdit)
        assert replies[4].ok   # the sibling still scored

    def test_internal_error_is_a_value(self, service, dataset,
                                       monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(service.engine(), "_score_context", boom)
        reply = service.execute(ScoreQuery(list(dataset)[0].student_id,
                                           3, (1,)))
        assert isinstance(reply, InternalError)
        assert "kaboom" in reply.message

    def test_errors_do_not_poison_the_batch(self, service, dataset):
        student = list(dataset)[0].student_id
        replies = service.execute_batch([
            ScoreQuery(student, 9999, (1,)),
            ScoreQuery(student, 3, (1,)),
            ExplainQuery("ghost"),
            ExplainQuery(student),
        ])
        assert isinstance(replies[0], InvalidQuestion)
        assert replies[1].ok
        assert isinstance(replies[2], UnknownStudent)
        assert replies[3].ok


# ---------------------------------------------------------------------------
# Deprecation shims: old engine methods == facade, bit-identically
# ---------------------------------------------------------------------------
class TestDeprecationShims:
    def test_score_batch_is_bit_identical_to_facade(self, service,
                                                    dataset):
        engine = service.engine()
        requests = [ScoreRequest(s.student_id, 1 + k % NUM_QUESTIONS,
                                 (1 + k % NUM_CONCEPTS,))
                    for k, s in enumerate(dataset)]
        via_shim = legacy(engine.score_batch, requests)
        via_facade = [service.execute(ScoreQuery(
            r.student_id, r.question_id, r.concept_ids)).score
            for r in requests]
        np.testing.assert_allclose(via_shim, via_facade, rtol=0, atol=0)

    def test_influences_shim_returns_facade_computation(self, service,
                                                        dataset):
        engine = service.engine()
        student = next(s for s in dataset if len(s) >= 4).student_id
        computation = legacy(engine.influences, student)
        reply = service.execute(ExplainQuery(student))
        assert float(computation.scores[0]) == reply.score

    def test_recommend_shim_matches_facade_items(self, service, dataset):
        engine = service.engine()
        student = next(s for s in dataset if len(s) >= 6).student_id
        candidates = [ScoreRequest(student, q, (1 + q % NUM_CONCEPTS,))
                      for q in (3, 11, 27)]
        shim = legacy(engine.recommend, student, candidates, top_k=3)
        facade = service.execute(RecommendQuery(
            student, tuple(CandidateQuestion(c.question_id, c.concept_ids)
                           for c in candidates), top_k=3))
        assert [r.question_id for r in shim] == \
            [item.question_id for item in facade.items]
        for mine, item in zip(shim, facade.items):
            assert mine.score == item.score
            assert mine.success_probability == item.success_probability

    def test_shim_errors_keep_legacy_exception_contract(self, service):
        engine = service.engine()
        with pytest.raises(ValueError, match="question_id 9999"):
            legacy(engine.score, "amy", 9999, (1,))
        with pytest.raises(ValueError, match="at least two"):
            legacy(engine.influences, "ghost")

    def test_engine_service_is_canonical(self, service):
        # The facade installs itself on its engines: shims route back to
        # the same scheduler instead of spawning a parallel facade.
        assert service.engine().service is service

    def test_every_shim_announces_its_replacement(self, service, dataset):
        """Each legacy entry point warns once per call, names the typed
        replacement, and points at the published removal schedule — all
        while returning the same values as before."""
        engine = service.engine()
        student = next(s for s in dataset if len(s) >= 4).student_id
        candidates = [ScoreRequest(student, q, (1 + q % NUM_CONCEPTS,))
                      for q in (3, 11)]
        calls = [
            (lambda: engine.submit(ScoreRequest(student, 5, (1,))),
             "Service.execute_batch"),
            (lambda: engine.flush(), "Service.execute_batch"),
            (lambda: engine.score_batch(
                [ScoreRequest(student, 5, (1,))]), "ScoreQuery"),
            (lambda: engine.score(student, 5, (1,)),
             "Service.execute(ScoreQuery"),
            (lambda: engine.influences(student), "ExplainQuery"),
            (lambda: engine.recommend(student, candidates, top_k=2),
             "RecommendQuery"),
        ]
        for call, replacement in calls:
            with pytest.warns(DeprecationWarning) as captured:
                call()
            messages = [str(w.message) for w in captured]
            assert any(replacement in m for m in messages)
            assert all("docs/API.md" in m and "Deprecation schedule" in m
                       for m in messages)

    def test_shim_warning_points_at_the_caller(self, service, dataset):
        # stacklevel=2: the warning blames the deprecated call site in
        # user code, not the adapter inside engine.py.
        engine = service.engine()
        student = list(dataset)[0].student_id
        with pytest.warns(DeprecationWarning) as captured:
            engine.score(student, 5, (1,))
        assert captured[0].filename == __file__


# ---------------------------------------------------------------------------
# Registry + hot swap
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_multi_model_routing(self, dataset):
        registry = ModelRegistry()
        registry.register("a", InferenceEngine(make_model(seed=1)))
        registry.register("b", InferenceEngine(make_model(seed=2)))
        service = Service(registry=registry)
        service.engine("a").load_dataset(dataset)
        service.engine("b").load_dataset(dataset)
        student = list(dataset)[0].student_id
        score_a = service.execute(ScoreQuery(student, 3, (1,), model="a"))
        score_b = service.execute(ScoreQuery(student, 3, (1,), model="b"))
        assert score_a.model == "a" and score_b.model == "b"
        assert score_a.score != score_b.score   # different weights
        described = {entry["name"] for entry in service.describe_models()}
        assert described == {"a", "b"}

    def test_hot_swap_preserves_histories_and_changes_scores(self,
                                                             dataset,
                                                             tmp_path):
        registry = ModelRegistry()
        engine = registry.register("prod",
                                   InferenceEngine(make_model(seed=1)))
        engine.load_dataset(dataset)
        service = Service(registry=registry)
        student = list(dataset)[0].student_id
        before = service.execute(ScoreQuery(student, 3, (1,),
                                            model="prod")).score
        retrained = InferenceEngine(make_model(seed=9))
        path = tmp_path / "retrained.npz"
        retrained.save(path)
        registry.swap("prod", path)
        after = service.execute(ScoreQuery(student, 3, (1,), model="prod"))
        assert after.ok and after.score != before
        assert engine.history_length(student) == len(list(dataset)[0])

    def test_swap_rejects_mismatched_config(self, tmp_path):
        registry = ModelRegistry()
        registry.register("prod", InferenceEngine(make_model(layers=1)))
        other = InferenceEngine(make_model(layers=2))
        path = tmp_path / "other.npz"
        other.save(path)
        with pytest.raises(ValueError, match="different model config"):
            registry.swap("prod", path)
        with pytest.raises(KeyError, match="unknown"):
            registry.swap("unknown-name", path)

    def test_alias_registration_keeps_shims_working(self, dataset):
        # Registering an already-bound engine in a *second* registry
        # must not repoint engine.name: its legacy shims address the
        # facade it was first bound to.
        engine = InferenceEngine(make_model())
        engine.load_dataset(dataset)
        service = Service(engine)          # binds under 'default'
        student = list(dataset)[0].student_id
        before = legacy(engine.score, student, 3, (1,))
        other = ModelRegistry()
        other.register("canary", engine)
        assert engine.name == "default"
        assert legacy(engine.score, student, 3, (1,)) == before   # shims intact
        # The alias serves the same engine, echoing the addressed name.
        aliased = Service(registry=other).execute(
            ScoreQuery(student, 3, (1,), model="canary"))
        assert aliased.model == "canary"
        assert aliased.score == before

    def test_service_from_checkpoint(self, dataset, tmp_path):
        engine = InferenceEngine(make_model())
        path = tmp_path / "svc.npz"
        engine.save(path)
        service = Service.from_checkpoint(path, name="prod")
        assert service.registry.names() == ["prod"]
        assert service.execute(ScoreQuery("cold", 3, (1,),
                                          model="prod")).score == 0.5


# ---------------------------------------------------------------------------
# Admission queue + persistent worker pool
# ---------------------------------------------------------------------------
class TestAdmissionAndPool:
    def test_submit_flush_lifecycle(self, service, dataset):
        students = [s.student_id for s in list(dataset)[:3]]
        handles = [service.submit(ScoreQuery(s, 9, (4,)))
                   for s in students]
        assert not any(h.done for h in handles)
        with pytest.raises(RuntimeError, match="not flushed"):
            _ = handles[0].reply
        service.flush()
        direct = [service.execute(ScoreQuery(s, 9, (4,)))
                  for s in students]
        for handle, reference in zip(handles, direct):
            assert handle.done
            assert handle.reply.score == reference.score

    def test_auto_flush_at_max_batch(self, model, dataset):
        engine = InferenceEngine(model)
        engine.load_dataset(dataset)
        service = Service(engine, max_batch=2)
        first = service.submit(ScoreQuery(list(dataset)[0].student_id,
                                          2, (1,)))
        assert not first.done
        second = service.submit(ScoreQuery(list(dataset)[1].student_id,
                                           2, (1,)))
        assert first.done and second.done

    def test_persistent_pool_reused_and_bit_identical(self, model,
                                                      dataset):
        threaded = InferenceEngine(model, workers=3, target_batch=4)
        sequential = InferenceEngine(model, target_batch=4)
        threaded.load_dataset(dataset)
        sequential.load_dataset(dataset)
        assert threaded._executor is not None
        pool = threaded._executor
        queries = [ScoreQuery(s.student_id, 1 + k % NUM_QUESTIONS,
                              (1 + k % NUM_CONCEPTS,))
                   for k, s in enumerate(dataset)]
        first = Service(threaded).execute_batch(queries)
        second = threaded.service.execute_batch(queries)
        reference = sequential.service.execute_batch(queries)
        # Same pool object across calls; no per-call spin-up.
        assert threaded._executor is pool
        for a, b, c in zip(first, second, reference):
            assert a.score == b.score == c.score
        threaded.close()
        assert threaded._executor is None
        # Scoring still works after close (falls back to per-call pools).
        assert threaded.service.execute(queries[0]).score == first[0].score
