"""RecourseQuery end to end: search semantics, batching, parity, report.

The golden references here rebuild each hypothetical timeline from
scratch through the seed idiom (collate one sequence, ``predict_scores``
on the probe row), so the search's claimed trajectory is checked against
the exact path the paper's evaluation protocol scores — independent of
the serving engine's caches and batching.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.core import ENCODERS, RCKT, RCKTConfig
from repro.data import Interaction, StudentSequence, collate
from repro.serve import (CandidateQuestion, InferenceEngine,
                         InvalidQuestion, MalformedQuery, ModelNotLoaded,
                         RecourseQuery, ScoreQuery, Service, ServiceClient,
                         UnknownStudent, start_http_thread, to_wire)

NUM_QUESTIONS = 30
NUM_CONCEPTS = 5
ATOL = 1e-10

#: (question, correct, concepts) — three incorrect responses to fix.
HISTORY = [(3, 1, (1,)), (7, 0, (2,)), (12, 1, (1, 3)), (9, 0, (4,)),
           (15, 1, (2,)), (5, 0, (1,)), (21, 1, (5,)), (11, 1, (2, 4))]
INCORRECT = [k for k, (_, correct, _) in enumerate(HISTORY)
             if correct == 0]
TARGET = (18, (2,))
CANDIDATES = (CandidateQuestion(6, (1,)), CandidateQuestion(24, (3,)))


def make_model(encoder="dkt"):
    return RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                RCKTConfig(encoder=encoder, dim=8, layers=1, seed=3))


def make_service(encoder="dkt", student="kai", **engine_kwargs):
    engine = InferenceEngine(make_model(encoder), **engine_kwargs)
    for question, correct, concepts in HISTORY:
        engine.record(student, question, correct, concepts)
    return Service(engine), engine


def golden_score(model, interactions, question_id, concept_ids):
    probe = Interaction(question_id, 1, tuple(concept_ids))
    sequence = StudentSequence("ref", list(interactions) + [probe])
    batch = collate([sequence])
    return float(model.predict_scores(batch,
                                      np.array([len(sequence) - 1]))[0])


def edited_interactions(fixed=(), practiced=()):
    """The base HISTORY with fixes applied and practice items appended."""
    rows = [Interaction(q, 1 if k in fixed else r, c)
            for k, (q, r, c) in enumerate(HISTORY)]
    rows += [Interaction(CANDIDATES[i].question_id, 1,
                         CANDIDATES[i].concept_ids) for i in practiced]
    return rows


def apply_steps(steps):
    """(fixed, practiced) edit sets accumulated along a reply's path."""
    fixed, practiced = set(), []
    candidate_of = {c.question_id: i for i, c in enumerate(CANDIDATES)}
    for step in steps:
        if step.kind == "fix_history":
            fixed.add(step.position)
        else:
            practiced.append(candidate_of[step.question_id])
    return fixed, practiced


@pytest.fixture()
def stack():
    service, engine = make_service()
    yield service, engine
    service.close()


# ---------------------------------------------------------------------------
# Search semantics against from-scratch golden rescoring
# ---------------------------------------------------------------------------
class TestSearchSemantics:
    def test_baseline_above_threshold_needs_no_search(self, stack):
        service, _ = stack
        reply = service.execute(RecourseQuery(
            "kai", *TARGET, threshold=0.0, candidates=CANDIDATES))
        assert reply.ok and reply.achieved
        assert reply.steps == () and reply.generations == 0
        assert reply.worlds_scored == 0
        assert reply.final_score == reply.baseline_score
        assert reply.trajectory == (reply.baseline_score,)
        golden = golden_score(service.engine().model,
                              edited_interactions(), *TARGET)
        assert abs(reply.baseline_score - golden) < ATOL

    def test_unreachable_threshold_returns_best_effort(self, stack):
        service, _ = stack
        reply = service.execute(RecourseQuery(
            "kai", *TARGET, threshold=1.0, max_edits=2, beam_width=2,
            candidates=CANDIDATES))
        assert reply.ok and not reply.achieved
        assert reply.generations == 2
        assert 0 < len(reply.steps) <= 2
        assert reply.final_score < 1.0
        # Best effort still beats doing nothing.
        assert reply.final_score >= reply.baseline_score
        # The claimed trajectory is real: rebuild each prefix timeline
        # from scratch and rescore.
        model = service.engine().model
        for k in range(len(reply.steps)):
            fixed, practiced = apply_steps(reply.steps[:k + 1])
            golden = golden_score(
                model, edited_interactions(fixed, practiced), *TARGET)
            assert abs(reply.steps[k].score - golden) < ATOL

    def test_first_clearing_generation_is_the_minimal_edit_set(self):
        # One candidate only: every edit *set* then maps to a unique
        # timeline (fixes are positional, repeats of one practice item
        # are order-free), so brute force over all 1- and 2-edit sets
        # is exact.  Pick a threshold between the best single edit and
        # the best pair: the search must need exactly two edits.
        service, engine = make_service()
        try:
            moves = [("fix", p) for p in INCORRECT] + [("practice", 0)]

            def score_of(chosen):
                fixed = {m[1] for m in chosen if m[0] == "fix"}
                practiced = [0] * sum(m[0] == "practice" for m in chosen)
                return golden_score(
                    engine.model,
                    edited_interactions(fixed, practiced), *TARGET)

            singles = {m: score_of([m]) for m in moves}
            pairs = {frozenset([a, b]): score_of([a, b])
                     for a, b in combinations(moves, 2)}
            pairs[("practice", "practice")] = score_of(
                [("practice", 0), ("practice", 0)])
            best1, best2 = max(singles.values()), max(pairs.values())
            assert best2 > best1 + 1e-9   # seed sanity for this model
            threshold = (best1 + best2) / 2

            reply = service.execute(RecourseQuery(
                "kai", *TARGET, threshold=threshold, max_edits=3,
                beam_width=16, candidates=(CANDIDATES[0],)))
            assert reply.achieved
            assert len(reply.steps) == reply.generations == 2
            assert reply.final_score >= threshold
            # A wide-open beam explores every pair: the chosen set is
            # the best two-edit set, not merely a clearing one.
            assert abs(reply.final_score - best2) < ATOL
            assert all(singles[m] < threshold for m in moves)
        finally:
            service.close()

    def test_monotonic_flag_matches_per_step_diagnostics(self, stack):
        service, _ = stack
        reply = service.execute(RecourseQuery(
            "kai", *TARGET, threshold=1.0, max_edits=3, beam_width=2,
            candidates=CANDIDATES))
        assert reply.monotonic == \
            (not any(step.lowered_score for step in reply.steps))
        for previous, step in zip(reply.trajectory, reply.steps):
            assert step.lowered_score == (step.score < previous)

    def test_cached_and_uncached_searches_agree_exactly(self):
        warm_service, _ = make_service()
        cold_service, _ = make_service(stream_cache_bytes=0)
        query = RecourseQuery("kai", *TARGET, threshold=0.9, max_edits=3,
                              beam_width=2, candidates=CANDIDATES)
        try:
            warm_service.execute(ScoreQuery("kai", *TARGET))  # warm cache
            warm = warm_service.execute(query)
            cold = cold_service.execute(query)
            assert to_wire(warm) == to_wire(cold)
        finally:
            warm_service.close()
            cold_service.close()


# ---------------------------------------------------------------------------
# Admission validation: every rejection is a taxonomy value
# ---------------------------------------------------------------------------
class TestAdmission:
    BAD = [
        ({"threshold": -0.1}, MalformedQuery, "threshold"),
        ({"threshold": 1.5}, MalformedQuery, "threshold"),
        ({"threshold": "high"}, MalformedQuery, "threshold"),
        ({"max_edits": 0}, MalformedQuery, "max_edits"),
        ({"max_edits": 999}, MalformedQuery, "max_edits"),
        ({"max_edits": 2.5}, MalformedQuery, "max_edits"),
        ({"beam_width": 0}, MalformedQuery, "beam_width"),
        ({"beam_width": 999}, MalformedQuery, "beam_width"),
        ({"allow_history_edits": "yes"}, MalformedQuery,
         "allow_history_edits"),
        ({"question_id": 9999}, InvalidQuestion, "9999"),
        ({"candidates": (CandidateQuestion(9999, (1,)),)},
         InvalidQuestion, "9999"),
    ]

    @pytest.mark.parametrize("overrides,error_cls,fragment", BAD,
                             ids=[str(sorted(b[0])[0]) + "-" + b[2]
                                  for b in BAD])
    def test_invalid_parameters(self, stack, overrides, error_cls,
                                fragment):
        service, _ = stack
        fields = {"student_id": "kai", "question_id": TARGET[0],
                  "concept_ids": TARGET[1], "candidates": CANDIDATES}
        fields.update(overrides)
        reply = service.execute(RecourseQuery(**fields))
        assert isinstance(reply, error_cls)
        assert fragment in reply.message

    def test_no_edit_dimension_is_rejected(self, stack):
        service, _ = stack
        reply = service.execute(RecourseQuery(
            "kai", *TARGET, candidates=(), allow_history_edits=False))
        assert isinstance(reply, MalformedQuery)
        assert "edit dimension" in reply.message

    def test_unknown_student(self, stack):
        service, _ = stack
        reply = service.execute(RecourseQuery(
            "ghost", *TARGET, candidates=CANDIDATES))
        assert isinstance(reply, UnknownStudent)
        assert "ghost" in reply.message

    def test_errors_do_not_poison_batch_siblings(self, stack):
        service, _ = stack
        replies = service.execute_batch([
            RecourseQuery("ghost", *TARGET, candidates=CANDIDATES),
            RecourseQuery("kai", *TARGET, threshold=2.0),
            ScoreQuery("kai", *TARGET),
            RecourseQuery("kai", *TARGET, threshold=0.0,
                          candidates=CANDIDATES),
        ])
        assert isinstance(replies[0], UnknownStudent)
        assert isinstance(replies[1], MalformedQuery)
        assert replies[2].ok and replies[3].ok

    def test_all_history_edits_with_no_incorrect_responses(self):
        # A perfect history has nothing to fix: with no candidates
        # either, the search has no moves and reports best-effort.
        service, engine = make_service(student="ace")
        try:
            for question, _, concepts in HISTORY:
                engine.record("flawless", question, 1, concepts)
            reply = service.execute(RecourseQuery(
                "flawless", *TARGET, threshold=1.0, max_edits=2))
            assert reply.ok and not reply.achieved
            assert reply.steps == () and reply.generations == 0
        finally:
            service.close()


# ---------------------------------------------------------------------------
# The batching contract: one shared forward-stream batch per generation
# ---------------------------------------------------------------------------
class TestGenerationBatching:
    def _counting(self, engine, monkeypatch):
        counts = {"capture": 0, "forward": 0}
        encoder = engine.model.generator.encoder
        real_capture = encoder.forward_stream_with_capture
        real_forward = encoder.forward_stream

        def capture(*args, **kwargs):
            counts["capture"] += 1
            return real_capture(*args, **kwargs)

        def forward(*args, **kwargs):
            counts["forward"] += 1
            return real_forward(*args, **kwargs)

        monkeypatch.setattr(encoder, "forward_stream_with_capture",
                            capture)
        monkeypatch.setattr(encoder, "forward_stream", forward)
        return counts

    def test_warm_practice_search_runs_zero_forward_passes(self, stack,
                                                           monkeypatch):
        """Candidate-only worlds extend clones of the warm stream cache
        step by step: the whole multi-generation search costs no
        forward-stream work at all."""
        service, engine = stack
        service.execute(ScoreQuery("kai", *TARGET))   # warm the cache
        counts = self._counting(engine, monkeypatch)
        reply = service.execute(RecourseQuery(
            "kai", *TARGET, threshold=0.99, max_edits=3, beam_width=2,
            candidates=CANDIDATES, allow_history_edits=False))
        assert reply.ok and reply.generations == 3
        assert reply.worlds_scored > reply.generations   # shared batches
        assert counts == {"capture": 0, "forward": 0}

    def test_history_edit_search_rebuilds_once_per_generation(self,
                                                              monkeypatch):
        """Fix-history worlds rewrite the middle of the timeline, so
        they must re-encode — but all of a generation's worlds ride ONE
        stacked capture pass, plus one for the cold baseline flush."""
        service, engine = make_service()
        try:
            counts = self._counting(engine, monkeypatch)
            reply = service.execute(RecourseQuery(
                "kai", *TARGET, threshold=0.99, max_edits=2,
                beam_width=2, candidates=(CANDIDATES[0],)))
            assert reply.ok and reply.generations == 2
            # Generation g holds |fix moves| + practice children — far
            # more worlds than capture passes.
            assert reply.worlds_scored > reply.generations
            assert counts["forward"] == 0
            assert counts["capture"] == 1 + reply.generations
        finally:
            service.close()

    def test_recourse_baseline_rides_the_shared_mixed_flush(self,
                                                            monkeypatch):
        """A mixed envelope's cold students and the recourse baseline
        probe warm-build in the same single capture pass; only the
        per-generation rebuilds come on top."""
        service, engine = make_service()
        try:
            for question, correct, concepts in HISTORY:
                engine.record("lee", question, correct, concepts)
            counts = self._counting(engine, monkeypatch)
            replies = service.execute_batch([
                ScoreQuery("lee", *TARGET),
                RecourseQuery("kai", *TARGET, threshold=0.99,
                              max_edits=2, beam_width=2,
                              candidates=(CANDIDATES[0],)),
            ])
            assert all(reply.ok for reply in replies)
            assert counts["forward"] == 0
            assert counts["capture"] == 1 + replies[1].generations
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Surface parity: facade == HTTP gateway == 2-shard cluster router
# ---------------------------------------------------------------------------
def wire_equal(ours, reference, atol):
    if type(ours) is not type(reference):
        return False
    if isinstance(ours, dict):
        return ours.keys() == reference.keys() and all(
            wire_equal(ours[key], reference[key], atol) for key in ours)
    if isinstance(ours, list):
        return len(ours) == len(reference) and all(
            wire_equal(a, b, atol) for a, b in zip(ours, reference))
    if isinstance(ours, float):
        return abs(ours - reference) <= atol
    return ours == reference


@pytest.mark.parametrize("encoder", ENCODERS)
def test_facade_gateway_and_router_agree(encoder):
    """The same recourse searches through all three public surfaces.

    dkt is exactly bit-identical; the attention encoders get a few ulp
    for BLAS reduction order over different padded batch widths (the
    same tolerance the cluster parity suite uses).
    """
    from repro.cluster import ScatterGatherRouter

    atol = 0.0 if encoder == "dkt" else 1e-12
    facade = Service(InferenceEngine(make_model(encoder)))
    gateway_service = Service(InferenceEngine(make_model(encoder)))
    shard_services = [Service(InferenceEngine(make_model(encoder)))
                      for _ in range(2)]
    gateway, _ = start_http_thread(gateway_service)
    shard_servers = [start_http_thread(service)[0]
                     for service in shard_services]
    router = ScatterGatherRouter(
        [f"http://127.0.0.1:{server.server_port}"
         for server in shard_servers], timeout=10.0)
    client = ServiceClient(f"http://127.0.0.1:{gateway.server_port}",
                           timeout=10.0)
    try:
        students = [f"{encoder}-r{k}" for k in range(4)]
        from repro.serve import RecordEvent
        records = [RecordEvent(student, question, correct, concepts)
                   for student in students
                   for question, correct, concepts in HISTORY]
        for surface in (facade.execute_batch, client.batch,
                        router.execute_batch):
            assert all(reply.ok for reply in surface(records))
        queries = [RecourseQuery(student, *TARGET,
                                 threshold=0.6 + 0.1 * k, max_edits=2,
                                 beam_width=2, candidates=CANDIDATES)
                   for k, student in enumerate(students)]
        reference = facade.execute_batch(queries)
        assert all(reply.ok for reply in reference)
        for surface_replies in (client.batch(queries),
                                router.execute_batch(queries)):
            for ours, ref in zip(surface_replies, reference):
                assert wire_equal(to_wire(ours), to_wire(ref), atol), \
                    f"{to_wire(ours)} != {to_wire(ref)}"
    finally:
        client.close()
        router.close()
        gateway.shutdown()
        gateway.server_close()
        for server in shard_servers:
            server.shutdown()
            server.server_close()
        for service in [facade, gateway_service] + shard_services:
            service.close()


# ---------------------------------------------------------------------------
# The standalone monotonicity sweep
# ---------------------------------------------------------------------------
class TestMonotonicityReport:
    def test_report_matches_golden_deltas(self, stack):
        service, engine = stack
        report = service.monotonicity_report("kai")
        assert report["positions_checked"] == len(INCORRECT)
        assert report["history_length"] == len(HISTORY)
        assert report["window_start"] == 0
        deltas = []
        for position in INCORRECT:
            question, _, concepts = HISTORY[position]
            recorded = golden_score(engine.model, edited_interactions(),
                                    question, concepts)
            corrected = golden_score(
                engine.model, edited_interactions(fixed={position}),
                question, concepts)
            deltas.append(corrected - recorded)
        violations = [p for p, d in zip(INCORRECT, deltas) if d < 0.0]
        assert report["violations"] == len(violations)
        assert report["violation_positions"] == violations
        assert abs(report["mean_delta"] - np.mean(deltas)) < ATOL
        if violations:
            assert abs(report["max_drop"] - (-min(deltas))) < ATOL
        else:
            assert report["max_drop"] == 0.0

    def test_report_errors_are_values(self, stack):
        service, _ = stack
        assert isinstance(service.monotonicity_report("ghost"),
                          UnknownStudent)
        assert isinstance(service.monotonicity_report("kai", model="no"),
                          ModelNotLoaded)

    def test_lowered_score_flags_agree_with_the_report(self, stack):
        """A fix_history step at position p in a recourse path scores
        the same correction the report probes — different probe
        questions, but both must call the same timeline edit."""
        service, _ = stack
        report = service.monotonicity_report("kai")
        reply = service.execute(RecourseQuery(
            "kai", *TARGET, threshold=1.0, max_edits=1, beam_width=32,
            candidates=()))
        assert reply.ok
        assert {step.position for step in reply.steps
                if step.kind == "fix_history"} <= set(INCORRECT)
        assert 0 <= report["violations"] <= report["positions_checked"]
