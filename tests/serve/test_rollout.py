"""Warm blue/green rollout: Service.rollout + the gateway admin route."""

import numpy as np
import pytest

from repro.core import RCKT, RCKTConfig
from repro.serve import (InferenceEngine, MalformedQuery, ModelNotLoaded,
                         ScoreQuery, Service, ServiceClient,
                         start_http_thread)

NUM_QUESTIONS = 40
NUM_CONCEPTS = 6
ATOL = 1e-10


def make_model(seed=3, dim=8):
    return RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                RCKTConfig(encoder="dkt", dim=dim, layers=1, seed=seed))


def save_checkpoint(tmp_path, name, seed=9, dim=8):
    path = tmp_path / f"{name}.npz"
    InferenceEngine(make_model(seed=seed, dim=dim)).save(path)
    return path


def load_records(service, students, per_student=4, seed=21):
    rng = np.random.default_rng(seed)
    for student in students:
        for _ in range(per_student):
            service.engine().record(
                student, int(rng.integers(1, NUM_QUESTIONS + 1)),
                int(rng.integers(0, 2)),
                (int(rng.integers(1, NUM_CONCEPTS + 1)),))


class TestServiceRollout:
    def test_swaps_weights_and_keeps_histories(self, tmp_path):
        service = Service(InferenceEngine(make_model(seed=1)))
        students = ["amy", "bob"]
        load_records(service, students)
        before = service.execute(ScoreQuery("amy", 3, (1,))).score
        length = service.engine().history_length("amy")

        green = save_checkpoint(tmp_path, "green", seed=9)
        summary = service.rollout(green)
        assert summary["model"] == "default"
        after = service.execute(ScoreQuery("amy", 3, (1,)))
        assert after.ok and after.score != before
        assert service.engine().history_length("amy") == length
        # Post-swap serving matches a cold service on the same weights
        # and histories.
        reference = Service(InferenceEngine(make_model(seed=9)))
        load_records(reference, students)
        assert abs(after.score
                   - reference.execute(ScoreQuery("amy", 3,
                                                  (1,))).score) < ATOL
        service.close()
        reference.close()

    def test_hot_students_score_warm_after_swap(self, tmp_path,
                                                monkeypatch):
        service = Service(InferenceEngine(make_model(seed=1)))
        students = [f"s{k}" for k in range(5)]
        load_records(service, students)
        # Warm the blue cache for 3 of the 5 students only.
        hot = students[:3]
        service.execute_batch([ScoreQuery(s, 2, (1,)) for s in hot])
        assert set(service.engine().stream_caches.hot_keys()) == set(hot)

        green = save_checkpoint(tmp_path, "green", seed=9)
        summary = service.rollout(green, warm_top=8)
        assert summary["warmed"] == len(hot)

        engine = service.engine()
        counts = {"capture": 0}
        encoder = engine.model.generator.encoder
        real = encoder.forward_stream_with_capture

        def capture(*args, **kwargs):
            counts["capture"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(encoder, "forward_stream_with_capture",
                            capture)
        # Hot students hit the pre-built green caches: zero warm-up
        # passes on their first post-swap score.
        replies = service.execute_batch([ScoreQuery(s, 2, (1,))
                                         for s in hot])
        assert all(reply.ok for reply in replies)
        assert counts["capture"] == 0
        # A never-cached student still cold-builds (exactly one pass).
        assert service.execute(ScoreQuery(students[-1], 2, (1,))).ok
        assert counts["capture"] == 1
        service.close()

    def test_records_after_swap_extend_the_warm_cache(self, tmp_path):
        service = Service(InferenceEngine(make_model(seed=1)))
        load_records(service, ["amy"])
        service.execute(ScoreQuery("amy", 2, (1,)))
        service.rollout(save_checkpoint(tmp_path, "green", seed=9))
        service.engine().record("amy", 5, 1, (2,))
        score = service.execute(ScoreQuery("amy", 7, (3,))).score
        reference = Service(InferenceEngine(make_model(seed=9)))
        load_records(reference, ["amy"])
        reference.engine().record("amy", 5, 1, (2,))
        assert abs(score - reference.execute(
            ScoreQuery("amy", 7, (3,))).score) < ATOL
        service.close()
        reference.close()

    def test_shares_the_persistent_pool(self, tmp_path):
        service = Service(InferenceEngine(make_model(seed=1), workers=3))
        load_records(service, ["amy"])
        pool = service.engine()._executor
        assert pool is not None
        service.rollout(save_checkpoint(tmp_path, "green", seed=9))
        assert service.engine()._executor is pool
        assert service.engine().workers == 3
        assert service.execute(ScoreQuery("amy", 3, (1,))).ok
        service.close()

    def test_window_configuration_carries_over(self, tmp_path):
        service = Service(InferenceEngine(make_model(seed=1), window=6,
                                          window_hop=2))
        load_records(service, ["amy"], per_student=10)
        service.rollout(save_checkpoint(tmp_path, "green", seed=9))
        engine = service.engine()
        assert engine.window == 6 and engine.window_hop == 2
        reference = Service(InferenceEngine(make_model(seed=9), window=6,
                                            window_hop=2))
        load_records(reference, ["amy"], per_student=10)
        assert abs(service.execute(ScoreQuery("amy", 3, (1,))).score
                   - reference.execute(ScoreQuery("amy", 3,
                                                  (1,))).score) < ATOL
        service.close()
        reference.close()

    def test_admin_errors_raise_in_process(self, tmp_path):
        service = Service(InferenceEngine(make_model()))
        with pytest.raises(KeyError, match="no model named"):
            service.rollout(save_checkpoint(tmp_path, "green"),
                            name="ghost")
        mismatched = tmp_path / "mismatched.npz"
        InferenceEngine(RCKT(10, 3, RCKTConfig(encoder="dkt", dim=8,
                                               layers=1,
                                               seed=1))).save(mismatched)
        with pytest.raises(ValueError, match="different id space"):
            service.rollout(mismatched)
        service.close()


class TestRolloutOverHTTP:
    @pytest.fixture()
    def stack(self):
        service = Service(InferenceEngine(make_model(seed=1)))
        load_records(service, ["amy", "bob"])
        server, _ = start_http_thread(service)
        client = ServiceClient(f"http://127.0.0.1:{server.server_port}",
                               timeout=10.0)
        yield service, client
        client.close()
        server.shutdown()
        service.close()

    def test_round_trip(self, stack, tmp_path):
        service, client = stack
        before = client.query(ScoreQuery("amy", 3, (1,))).score
        green = save_checkpoint(tmp_path, "green", seed=9)
        summary = client.rollout(green, warm_top=4)
        assert summary["status"] == "ok" and summary["model"] == "default"
        after = client.query(ScoreQuery("amy", 3, (1,)))
        assert after.ok and after.score != before
        assert after.score == service.execute(
            ScoreQuery("amy", 3, (1,))).score

    def test_taxonomy_mapping(self, stack, tmp_path):
        _, client = stack
        green = save_checkpoint(tmp_path, "green", seed=9)
        unknown = client.rollout(green, model="ghost")
        assert isinstance(unknown, ModelNotLoaded)
        missing = client.rollout(tmp_path / "nope.npz")
        assert isinstance(missing, MalformedQuery)
        assert "rollout rejected" in missing.message
        bad_body = client.rollout(green, warm_top="many")
        assert isinstance(bad_body, MalformedQuery)
