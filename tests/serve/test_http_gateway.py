"""The HTTP/JSON gateway: wire parity, taxonomy statuses, plumbing."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import RCKT, RCKTConfig
from repro.data import (SimulationConfig, StudentSimulator, build_dataset)
from repro.serve import (PROTOCOL_VERSION, BatchEnvelope,
                         CandidateQuestion, EmptyHistory, ExplainQuery,
                         HistoryEdit, InferenceEngine, InvalidConcept,
                         InvalidEdit, InvalidQuestion, MalformedQuery,
                         ModelNotLoaded, RecommendQuery, RecordEvent,
                         RecourseQuery, ScoreQuery, Service, ServiceClient,
                         UnknownStudent, WhatIfQuery, start_http_thread,
                         to_wire)
from repro.serve.http_gateway import MAX_BODY_BYTES

NUM_QUESTIONS = 30
NUM_CONCEPTS = 5
ATOL = 1e-10


@pytest.fixture(scope="module")
def dataset():
    config = SimulationConfig(num_students=4, num_questions=NUM_QUESTIONS,
                              num_concepts=NUM_CONCEPTS,
                              sequence_length=(5, 10))
    simulator = StudentSimulator(config, seed=23)
    return build_dataset("http", simulator.simulate(seed=24),
                         NUM_QUESTIONS, NUM_CONCEPTS)


@pytest.fixture(scope="module")
def stack(dataset):
    model = RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                 RCKTConfig(encoder="dkt", dim=8, layers=1, seed=5))
    engine = InferenceEngine(model)
    engine.load_dataset(dataset)
    service = Service(engine)
    server, thread = start_http_thread(service)
    client = ServiceClient(f"http://127.0.0.1:{server.server_port}",
                           timeout=10.0)
    yield engine, service, server, client
    server.shutdown()
    service.close()


def raw_post(server, route, body: bytes):
    """(status, decoded JSON) for a raw request body."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.server_port}{route}", data=body,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestWireParity:
    def test_score_matches_in_process_facade(self, stack, dataset):
        engine, service, _, client = stack
        for sequence in dataset:
            query = ScoreQuery(sequence.student_id,
                               1 + len(sequence) % NUM_QUESTIONS, (2,))
            wire = client.query(query)
            local = service.execute(query)
            assert wire.ok
            assert abs(wire.score - local.score) < ATOL
            assert wire.model == "default"

    def test_explain_round_trip(self, stack, dataset):
        _, service, _, client = stack
        student = next(s for s in dataset if len(s) >= 6).student_id
        wire = client.query(ExplainQuery(student))
        local = service.execute(ExplainQuery(student))
        assert abs(wire.score - local.score) < ATOL
        assert len(wire.influences) == len(local.influences)
        for a, b in zip(wire.influences, local.influences):
            assert a.position == b.position
            assert abs(a.influence - b.influence) < ATOL
        # The in-process-only computation never crosses the wire.
        assert wire.computation is None

    def test_what_if_round_trip(self, stack, dataset):
        _, service, _, client = stack
        student = next(s for s in dataset if len(s) >= 6).student_id
        query = WhatIfQuery(student, 9, (1,),
                            (HistoryEdit(0, "flip"),
                             HistoryEdit(2, "remove")))
        wire = client.query(query)
        local = service.execute(query)
        assert abs(wire.score - local.score) < ATOL
        assert abs(wire.baseline_score - local.baseline_score) < ATOL

    def test_record_and_batch_round_trip(self, stack, dataset):
        engine, _, _, client = stack
        replies = client.batch(BatchEnvelope((
            RecordEvent("wire-student", 3, 1, (2,)),
            RecordEvent("wire-student", 5, 0, (1,)),
            ScoreQuery("wire-student", 7, (3,)),
            RecommendQuery("wire-student",
                           (CandidateQuestion(4, (1,)),
                            CandidateQuestion(9, (2,)))),
        )))
        assert [reply.ok for reply in replies] == [True] * 4
        assert replies[1].history_length == 2
        direct = engine.service.execute(
            ScoreQuery("wire-student", 7, (3,)))
        assert abs(replies[2].score - direct.score) < ATOL
        assert len(replies[3].items) == 2

    def test_health_and_models(self, stack):
        client = stack[3]
        health = client.health()
        assert health["status"] == "ok"
        assert health["protocol"] == PROTOCOL_VERSION
        assert health["models"] == ["default"]
        capabilities = health["capabilities"]
        assert capabilities["protocol_versions"] == [1, 2]
        assert "recourse" in capabilities["query_types"]
        assert "recourse" not in \
            capabilities["query_types_by_version"]["1"]
        models = client.models()["models"]
        assert models[0]["num_questions"] == NUM_QUESTIONS


class TestTaxonomyOverHTTP:
    """Every structured error is constructible through the gateway,
    with its documented HTTP status and the same payload the facade
    returns in process."""

    CASES = [
        (ScoreQuery("amy", 9999, (1,)), InvalidQuestion, 400),
        (ScoreQuery("amy", 3, (999,)), InvalidConcept, 400),
        (ScoreQuery("amy", 3, ()), InvalidConcept, 400),
        (ExplainQuery("nobody"), UnknownStudent, 404),
        (WhatIfQuery("nobody", 3, (1,), (HistoryEdit(0, "flip"),)),
         UnknownStudent, 404),
        (RecommendQuery("nobody", (CandidateQuestion(3, (1,)),)),
         EmptyHistory, 409),
        (ScoreQuery("amy", 3, (1,), model="missing"), ModelNotLoaded, 503),
        (RecordEvent("amy", 3, 7, (1,)), MalformedQuery, 400),
    ]

    @pytest.mark.parametrize("query,error_cls,status", CASES,
                             ids=lambda v: getattr(v, "__name__", None))
    def test_error_statuses_and_payloads(self, stack, query, error_cls,
                                         status):
        _, service, server, client = stack
        http_status, payload = raw_post(server, "/v1/query",
                                        json.dumps(to_wire(query))
                                        .encode())
        assert http_status == status
        assert payload["type"] == "error"
        assert payload["code"] == error_cls.code
        local = service.execute(query)
        assert isinstance(local, error_cls)
        assert payload["message"] == local.message

    def test_invalid_edit_over_http(self, stack, dataset):
        _, _, server, _ = stack
        student = list(dataset)[0].student_id
        query = WhatIfQuery(student, 3, (1,), (HistoryEdit(99, "flip"),))
        status, payload = raw_post(server, "/v1/query",
                                   json.dumps(to_wire(query)).encode())
        assert status == InvalidEdit.http_status == 400
        assert payload["code"] == "invalid_edit"

    def test_batch_carries_per_query_errors_with_200(self, stack,
                                                     dataset):
        _, _, server, _ = stack
        student = list(dataset)[0].student_id
        body = json.dumps(to_wire(BatchEnvelope((
            ScoreQuery(student, 9999, (1,)),
            ScoreQuery(student, 3, (1,)),
        )))).encode()
        status, payload = raw_post(server, "/v1/batch", body)
        assert status == 200
        assert payload["type"] == "batch_reply"
        assert payload["replies"][0]["code"] == "invalid_question"
        assert payload["replies"][1]["type"] == "score_reply"


class TestGatewayPlumbing:
    def test_malformed_json_is_400(self, stack):
        _, _, server, _ = stack
        status, payload = raw_post(server, "/v1/query", b"{not json")
        assert status == 400 and payload["code"] == "malformed_query"

    def test_empty_body_is_400(self, stack):
        _, _, server, _ = stack
        status, payload = raw_post(server, "/v1/query", b"")
        assert status == 400 and payload["code"] == "malformed_query"

    def test_unknown_query_type_is_400(self, stack):
        _, _, server, _ = stack
        status, payload = raw_post(server, "/v1/query",
                                   b'{"v": 1, "type": "teleport"}')
        assert status == 400 and payload["code"] == "unknown_query_type"

    def test_unknown_route_is_404(self, stack):
        _, _, server, _ = stack
        status, payload = raw_post(server, "/v1/nope", b"{}")
        assert status == 404
        with pytest.raises(urllib.error.HTTPError) as error:
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.server_port}/nope", timeout=10)
        assert error.value.code == 404

    def test_rejected_body_closes_the_connection(self, stack, dataset):
        """A request bounced before its body is read must not leave
        body bytes on a kept-alive socket to be parsed as the next
        request line."""
        import http.client
        _, _, server, _ = stack
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.server_port, timeout=10)
        oversized = b"x" * 64
        connection.request(
            "POST", "/v1/query", body=oversized,
            headers={"Content-Type": "application/json",
                     "Content-Length": str(MAX_BODY_BYTES + 1)})
        response = connection.getresponse()
        assert response.status == 400
        assert json.loads(response.read())["code"] == "malformed_query"
        # The server closed this connection instead of reading the
        # (undelivered) body; a reuse attempt fails cleanly rather than
        # desyncing into a bogus 501.
        with pytest.raises((http.client.HTTPException, OSError)):
            connection.request("POST", "/v1/query", body=b"{}")
            connection.getresponse()
        connection.close()

    def test_ill_typed_wire_payload_is_structured_error(self, stack):
        _, _, server, _ = stack
        status, payload = raw_post(
            server, "/v1/query",
            b'{"v": 1, "type": "score", "student_id": "amy", '
            b'"question_id": "seven", "concept_ids": [1]}')
        assert status == 400
        assert payload["code"] == "invalid_question"
        assert "integer" in payload["message"]

    def test_concurrent_wire_scores_are_consistent(self, stack, dataset):
        """Thread-per-connection requests against one scheduler."""
        from concurrent.futures import ThreadPoolExecutor
        _, service, _, client = stack
        students = [s.student_id for s in dataset]
        queries = [ScoreQuery(students[k % len(students)],
                              1 + k % NUM_QUESTIONS, (1 + k % 4,))
                   for k in range(12)]
        with ThreadPoolExecutor(max_workers=6) as pool:
            wire_scores = list(pool.map(
                lambda q: client.query(q).score, queries))
        local = [service.execute(q).score for q in queries]
        np.testing.assert_allclose(wire_scores, local, rtol=0, atol=ATOL)


class TestVersionNegotiationOverHTTP:
    """Replies are stamped with the version the request declared."""

    def test_reply_echoes_the_request_version(self, stack, dataset):
        _, _, server, _ = stack
        student = list(dataset)[0].student_id
        for version in (1, 2):
            body = json.dumps(to_wire(ScoreQuery(student, 3, (1,)),
                                      version=version)).encode()
            status, payload = raw_post(server, "/v1/query", body)
            assert status == 200
            assert payload["v"] == version
            status, batch = raw_post(
                server, "/v1/batch",
                json.dumps(to_wire(BatchEnvelope(
                    (ScoreQuery(student, 3, (1,)),)),
                    version=version)).encode())
            assert batch["v"] == version

    def test_unsupported_version_is_a_value(self, stack):
        _, _, server, _ = stack
        status, payload = raw_post(
            server, "/v1/query",
            b'{"v": 99, "type": "score", "student_id": "amy", '
            b'"question_id": 3, "concept_ids": [1]}')
        assert status == 400
        assert payload["code"] == "unsupported_version"
        # No version to echo: the server answers at its own.
        assert payload["v"] == PROTOCOL_VERSION

    def test_recourse_under_v1_is_rejected_in_v1(self, stack, dataset):
        _, _, server, _ = stack
        student = list(dataset)[0].student_id
        payload = to_wire(RecourseQuery(
            student, 3, (1,), candidates=(CandidateQuestion(4, (1,)),)))
        payload["v"] = 1
        status, reply = raw_post(server, "/v1/query",
                                 json.dumps(payload).encode())
        assert status == 400
        assert reply["code"] == "unknown_query_type"
        assert reply["v"] == 1   # the rejection itself speaks v1

    def test_recourse_round_trips_through_the_client(self, stack,
                                                     dataset):
        _, service, _, client = stack
        student = next(s for s in dataset if len(s) >= 6).student_id
        query = RecourseQuery(
            student, 9, (2,), threshold=0.95, max_edits=2, beam_width=2,
            candidates=(CandidateQuestion(4, (1,)),
                        CandidateQuestion(11, (2,))))
        wire = client.query(query)
        local = service.execute(query)
        assert to_wire(wire) == to_wire(local)
        assert wire.ok and len(wire.trajectory) == len(wire.steps) + 1

    def test_v1_pinned_client_still_works(self, stack, dataset):
        _, _, server, _ = stack
        client = ServiceClient(f"http://127.0.0.1:{server.server_port}",
                               timeout=10.0, protocol_version=1)
        student = list(dataset)[0].student_id
        assert client.query(ScoreQuery(student, 3, (1,))).ok
        # A v2-only query through a v1-pinned client gets exactly the
        # rejection a genuine v1-only server would have produced.
        reply = client.query(RecourseQuery(
            student, 3, (1,), candidates=(CandidateQuestion(4, (1,)),)))
        assert reply.code == "unknown_query_type"
        client.close()


class TestKeepAliveClient:
    """Persistent connections: one socket serves many requests, stale
    sockets are retried transparently, and the pool closes cleanly."""

    def test_one_connection_serves_many_requests(self, stack, dataset):
        _, service, server, _ = stack
        client = ServiceClient(f"http://127.0.0.1:{server.server_port}",
                               timeout=10.0)
        student = list(dataset)[0].student_id
        for k in range(8):
            assert client.query(ScoreQuery(student,
                                           1 + k % NUM_QUESTIONS,
                                           (1,))).ok
        client.health()
        client.models()
        # Sequential traffic reuses the single kept-alive socket.
        assert client.connections_opened == 1
        client.close()

    def test_concurrent_requests_pool_connections(self, stack, dataset):
        from concurrent.futures import ThreadPoolExecutor
        _, _, server, _ = stack
        client = ServiceClient(f"http://127.0.0.1:{server.server_port}",
                               timeout=10.0, max_idle=4)
        student = list(dataset)[0].student_id
        queries = [ScoreQuery(student, 1 + k % NUM_QUESTIONS, (1,))
                   for k in range(24)]
        with ThreadPoolExecutor(max_workers=4) as pool:
            replies = list(pool.map(client.query, queries))
        assert all(reply.ok for reply in replies)
        # At most one socket per concurrent worker, not one per request.
        assert client.connections_opened <= 4
        client.close()

    def test_stale_keep_alive_socket_is_retried(self, stack, dataset):
        _, _, server, _ = stack
        client = ServiceClient(f"http://127.0.0.1:{server.server_port}",
                               timeout=10.0)
        assert client.query(ScoreQuery("amy", 3, (1,))).ok
        assert client.connections_opened == 1
        # Kill the pooled socket out from under the client — what a
        # worker restart or server idle-timeout does to a kept-alive
        # connection.  The next request must retry on a fresh socket
        # instead of surfacing the dead one.
        assert len(client._idle) == 1
        client._idle[0].sock.close()
        assert client.query(ScoreQuery("amy", 3, (1,))).ok
        assert client.connections_opened == 2   # one fresh retry
        client.close()

    def test_transport_failure_raises_close_idempotent(self):
        from repro.cluster.supervisor import free_port
        client = ServiceClient(f"http://127.0.0.1:{free_port()}",
                               timeout=2.0)
        with pytest.raises(OSError):
            client.query(ScoreQuery("amy", 3, (1,)))
        client.close()
        client.close()

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError, match="plain http"):
            ServiceClient("https://example.com")
