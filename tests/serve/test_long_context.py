"""Long-context serving: the 128-step ceiling is gone.

Two regimes, both exercised against literal truncate-and-recollate
references:

* **No window** — positional tables grow on demand, so arbitrarily long
  histories record and score exactly (the seed failed deep inside the
  positional-encoding lookup past 128 steps).
* **Windowed** — ``InferenceEngine(window=W, window_hop=H)`` bounds every
  score's context to the student's anchored window slice; scores equal a
  full recompute on that slice to 1e-10, for any interleaving of
  ``record``/``score`` and regardless of cache warmth, eviction, or
  re-anchoring.
"""

import numpy as np
import pytest

from repro.core import ENCODERS, RCKT, RCKTConfig, score_batch_targets
from repro.core.masking import window_start
from repro.data import Interaction, StudentSequence, collate
from repro.serve import (CandidateQuestion, ExplainQuery, InferenceEngine,
                         RecommendQuery, ScoreQuery, ScoreRequest, is_error)
from repro.tensor import no_grad

ATOL = 1e-10

NUM_QUESTIONS = 30
NUM_CONCEPTS = 6


def make_model(encoder, **overrides):
    settings = dict(dim=8, layers=2, seed=11)
    settings.update(overrides)
    return RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                RCKTConfig(encoder=encoder, **settings))


def synthetic_events(count, seed=0):
    rng = np.random.default_rng(seed)
    questions = rng.integers(1, NUM_QUESTIONS + 1, size=count)
    answers = rng.integers(0, 2, size=count)
    concepts = rng.integers(1, NUM_CONCEPTS + 1, size=count)
    return [(int(q), int(a), (int(c),))
            for q, a, c in zip(questions, answers, concepts)]


def truncated_recompute(model, events, probe, window, hop):
    """Score ``probe`` against the anchored window slice, from scratch."""
    start = window_start(len(events), window, hop) if window else 0
    interactions = [Interaction(q, a, c) for q, a, c in events[start:]]
    question_id, concept_ids = probe
    interactions.append(Interaction(question_id, 1, concept_ids))
    batch = collate([StudentSequence("ref", interactions)])
    model.eval()
    with no_grad():
        return score_batch_targets(model, batch,
                                   np.array([len(interactions) - 1]))[0]


def score(engine, student, question_id, concept_ids) -> float:
    """Single score through the typed facade (the non-deprecated path)."""
    reply = engine.service.execute(ScoreQuery(student, question_id,
                                              tuple(concept_ids)))
    assert not is_error(reply), reply
    return reply.score


def score_many(engine, requests) -> np.ndarray:
    replies = engine.service.execute_batch(
        [ScoreQuery(r.student_id, r.question_id, tuple(r.concept_ids))
         for r in requests])
    assert not any(is_error(reply) for reply in replies), replies
    return np.array([reply.score for reply in replies])


@pytest.mark.parametrize("encoder", ENCODERS)
def test_thousand_step_student_scores_to_parity(encoder):
    """The acceptance workload: record 1000+ steps, score windowed."""
    window, hop = 32, 8
    model = make_model(encoder, layers=1)
    engine = InferenceEngine(model, window=window, window_hop=hop)
    events = synthetic_events(1010, seed=3)
    probes = {100, 500, 1000, 1009}
    for step, (question, answer, concepts) in enumerate(events, start=1):
        engine.record("s", question, answer, concepts)
        if step in probes:
            got = score(engine, "s", 7, (2,))
            want = truncated_recompute(model, events[:step], (7, (2,)),
                                       window, hop)
            assert abs(got - want) < ATOL
    assert engine.history_length("s") == 1010


@pytest.mark.parametrize("encoder", ENCODERS)
def test_window_boundary_lengths(encoder):
    """Histories of exactly W-1, W, W+1 (and a hop later) all agree."""
    window, hop = 16, 4
    model = make_model(encoder)
    cached = InferenceEngine(model, window=window, window_hop=hop)
    uncached = InferenceEngine(model, window=window, window_hop=hop,
                               stream_cache_bytes=0)
    events = synthetic_events(window + hop + 2, seed=5)
    boundary = {window - 1, window, window + 1, window + hop + 1}
    for step, (question, answer, concepts) in enumerate(events, start=1):
        cached.record("s", question, answer, concepts)
        uncached.record("s", question, answer, concepts)
        if step in boundary:
            got_cached = score(cached, "s", 9, (3,))
            got_uncached = score(uncached, "s", 9, (3,))
            want = truncated_recompute(model, events[:step], (9, (3,)),
                                       window, hop)
            assert abs(got_cached - want) < ATOL
            assert abs(got_uncached - want) < ATOL


def test_eviction_straddling_the_window_boundary():
    """LRU eviction while the window slides must stay score-invisible."""
    window, hop = 12, 3
    model = make_model("dkt")
    # A budget this small evicts constantly, including exactly around
    # the re-anchoring records where the cache is discarded and rebuilt.
    tiny = InferenceEngine(model, window=window, window_hop=hop,
                           stream_cache_bytes=4096)
    reference = InferenceEngine(model, window=window, window_hop=hop,
                                stream_cache_bytes=0)
    events = synthetic_events(3 * window, seed=7)
    for student in ("a", "b", "c"):
        for step, (question, answer, concepts) in enumerate(events, start=1):
            tiny.record(student, question, answer, concepts)
            reference.record(student, question, answer, concepts)
            if window - 2 <= step <= window + hop + 1 or step % 9 == 0:
                got = score(tiny, student, 4, (1,))
                want = score(reference, student, 4, (1,))
                assert abs(got - want) < ATOL
    assert tiny.stream_cache_stats()["evictions"] > 0


@pytest.mark.parametrize("encoder", ENCODERS)
def test_interleaved_record_score_windowed_parity(encoder):
    """Random interleavings across students: cached == uncached ==
    truncated recompute, while windows slide at different phases."""
    window, hop = 10, 4
    model = make_model(encoder, layers=1)
    cached = InferenceEngine(model, window=window, window_hop=hop)
    uncached = InferenceEngine(model, window=window, window_hop=hop,
                               stream_cache_bytes=0)
    rng = np.random.default_rng(13)
    logs = {student: [] for student in range(3)}
    for turn in range(90):
        student = int(rng.integers(0, 3))
        if rng.random() < 0.3 and logs[student]:
            probe = (int(rng.integers(1, NUM_QUESTIONS + 1)),
                     (int(rng.integers(1, NUM_CONCEPTS + 1)),))
            got = score(cached, student, probe[0], probe[1])
            alt = score(uncached, student, probe[0], probe[1])
            want = truncated_recompute(model, logs[student], probe,
                                       window, hop)
            assert abs(got - want) < ATOL
            assert abs(alt - want) < ATOL
        else:
            event = synthetic_events(1, seed=1000 + turn)[0]
            logs[student].append(event)
            cached.record(student, *event)
            uncached.record(student, *event)
    requests = [ScoreRequest(student, 5, (2,)) for student in range(3)]
    np.testing.assert_allclose(score_many(cached, requests),
                               score_many(uncached, requests), atol=ATOL)


@pytest.mark.parametrize("encoder", ["sakt", "akt"])
def test_past_initial_positional_capacity_without_window(encoder):
    """Regression: the seed raised deep inside the positional-encoding
    lookup once a history crossed MAX_ENCODED_LENGTH=128; tables now
    grow on demand and the incremental cache tracks the batch path."""
    model = make_model(encoder, layers=1)
    cached = InferenceEngine(model)
    uncached = InferenceEngine(model, stream_cache_bytes=0)
    events = synthetic_events(140, seed=9)
    for question, answer, concepts in events:
        cached.record("s", question, answer, concepts)
        uncached.record("s", question, answer, concepts)
    got = score(cached, "s", 3, (2,))
    alt = score(uncached, "s", 3, (2,))
    want = truncated_recompute(model, events, (3, (2,)), None, None)
    assert abs(got - want) < ATOL
    assert abs(alt - want) < ATOL


def test_windowed_influences_and_recommend_cover_the_window():
    window, hop = 8, 2
    model = make_model("dkt")
    engine = InferenceEngine(model, window=window, window_hop=hop)
    for question, answer, concepts in synthetic_events(30, seed=21):
        engine.record("s", question, answer, concepts)
    reply = engine.service.execute(ExplainQuery("s"))
    assert not is_error(reply), reply
    influence = reply.computation
    # The influence readout conditions on the windowed context only.
    assert influence.history_lengths[0] <= window
    assert influence.history_lengths[0] > window - hop - 1
    recommended = engine.service.execute(RecommendQuery(
        "s", (CandidateQuestion(4, (1,)), CandidateQuestion(9, (2,))),
        top_k=2))
    assert not is_error(recommended), recommended
    assert len(recommended.items) == 2


def test_window_validation():
    model = make_model("dkt")
    with pytest.raises(ValueError):
        InferenceEngine(model, window=1)
    with pytest.raises(ValueError):
        InferenceEngine(model, window=8, window_hop=8)
    with pytest.raises(ValueError):
        InferenceEngine(model, window=8, window_hop=0)
    with pytest.raises(ValueError):
        InferenceEngine(model, window_hop=4)  # hop without window
    engine = InferenceEngine(model, window=8)
    assert engine.window_hop == 1  # max(1, 8 // 8)
    assert InferenceEngine(model, window=64).window_hop == 8


def test_windowed_checkpoint_roundtrip(tmp_path):
    window, hop = 8, 2
    model = make_model("dkt")
    engine = InferenceEngine(model, window=window, window_hop=hop)
    events = synthetic_events(20, seed=17)
    for question, answer, concepts in events:
        engine.record("s", question, answer, concepts)
    path = tmp_path / "ckpt.npz"
    engine.save(path)
    reloaded = InferenceEngine.from_checkpoint(path, window=window,
                                               window_hop=hop)
    for question, answer, concepts in events:
        reloaded.record("s", question, answer, concepts)
    assert abs(score(engine, "s", 5, (2,))
               - score(reloaded, "s", 5, (2,))) < ATOL
