"""Wire codec and typed-value semantics of the query protocol (v2+v1)."""

import json

import pytest

from repro.serve import protocol
from repro.serve.protocol import (PROTOCOL_VERSION,
                                  SUPPORTED_PROTOCOL_VERSIONS,
                                  BatchEnvelope, CandidateQuestion,
                                  ExplainReply, HistoryEdit, InfluenceItem,
                                  InvalidQuestion, MalformedQuery,
                                  RecommendQuery, RecommendReply,
                                  RecommendationItem, RecordEvent,
                                  RecordReply, RecourseQuery, RecourseReply,
                                  RecourseStep, ScoreQuery, ScoreReply,
                                  UnknownQueryType, UnknownStudent,
                                  UnsupportedVersion, WhatIfQuery,
                                  WhatIfReply, capabilities, is_error,
                                  negotiated_version, query_from_wire,
                                  query_types_for, reply_from_wire,
                                  to_wire)

QUERIES = [
    ScoreQuery("amy", 7, (3, 4)),
    ScoreQuery(17, 2, (1,), model="canary"),
    protocol.ExplainQuery("amy"),
    WhatIfQuery("amy", 7, (3,), (HistoryEdit(0, "flip"),
                                 HistoryEdit(2, "set", value=1),
                                 HistoryEdit(4, "remove"))),
    RecommendQuery("amy", (CandidateQuestion(4, (1,)),
                           CandidateQuestion(9, (2, 5))),
                   top_k=3, target_success=0.7, horizon=2),
    RecourseQuery("amy", 7, (3,), threshold=0.8, max_edits=2,
                  beam_width=2,
                  candidates=(CandidateQuestion(4, (1,)),
                              CandidateQuestion(9, (2, 5))),
                  allow_history_edits=False),
    RecordEvent("amy", 3, 1, (2,)),
]

REPLIES = [
    ScoreReply("amy", 7, 0.625, 6),
    WhatIfReply("amy", 7, 0.5, 0.625, 5, model="canary"),
    RecordReply("amy", 7),
    ExplainReply("amy", 3, 1, 0.5,
                 (InfluenceItem(0, 4, 1, 0.01), InfluenceItem(1, 5, 0, -0.02))),
    RecommendReply("amy", (RecommendationItem(4, (1,), 0.6, 0.1, 0.7),)),
    RecourseReply("amy", 7, achieved=True, threshold=0.8,
                  baseline_score=0.55, final_score=0.82,
                  steps=(RecourseStep("fix_history", 4, 0.61, position=2,
                                      concept_ids=(1,)),
                         RecourseStep("practice", 9, 0.82,
                                      concept_ids=(2, 5),
                                      lowered_score=False)),
                  monotonic=True, generations=2, worlds_scored=7,
                  history_length=9),
]

ERRORS = [
    UnknownStudent("who?", details={"student_id": "ghost"}),
    InvalidQuestion("bad question", details={"question_id": 999,
                                             "valid_range": (1, 50)}),
    MalformedQuery("nonsense"),
    UnsupportedVersion("bad version", details={"version": 99}),
    UnknownQueryType("what is recourse", details={"type": "recourse",
                                                  "requires": 2}),
]


class TestWireRoundTrip:
    @pytest.mark.parametrize("query", QUERIES,
                             ids=lambda q: type(q).__name__)
    def test_query_round_trip(self, query):
        payload = json.loads(json.dumps(to_wire(query)))
        assert payload["v"] == PROTOCOL_VERSION
        decoded = query_from_wire(payload)
        assert decoded == query

    @pytest.mark.parametrize("reply", REPLIES,
                             ids=lambda r: type(r).__name__)
    def test_reply_round_trip(self, reply):
        payload = json.loads(json.dumps(to_wire(reply)))
        decoded = reply_from_wire(payload)
        assert decoded == reply
        assert decoded.ok

    @pytest.mark.parametrize("error", ERRORS,
                             ids=lambda e: type(e).__name__)
    def test_error_round_trip(self, error):
        payload = json.loads(json.dumps(to_wire(error)))
        assert payload["type"] == "error"
        assert payload["code"] == error.code
        decoded = reply_from_wire(payload)
        assert type(decoded) is type(error)
        assert decoded.message == error.message
        assert not decoded.ok

    def test_batch_envelope_round_trip(self):
        envelope = BatchEnvelope((QUERIES[0], QUERIES[3]))
        decoded = query_from_wire(json.loads(json.dumps(to_wire(envelope))))
        assert decoded == envelope

    def test_wire_tuple_range_survives_json(self):
        # JSON has no tuples: details round-trip value-equal modulo
        # list/tuple, which `detail` normalizes for the caller.
        error = reply_from_wire(json.loads(json.dumps(to_wire(ERRORS[1]))))
        assert list(error.detail("valid_range")) == [1, 50]


class TestDecodeFailuresAreValues:
    def test_unknown_type(self):
        decoded = query_from_wire({"v": 1, "type": "teleport"})
        # The specific value is UnknownQueryType; it stays a
        # MalformedQuery subclass so pre-v2 handlers keep matching.
        assert isinstance(decoded, UnknownQueryType)
        assert isinstance(decoded, MalformedQuery)
        assert decoded.code == "unknown_query_type"
        assert "teleport" in decoded.message

    def test_missing_field(self):
        decoded = query_from_wire({"v": 1, "type": "score",
                                   "student_id": "amy"})
        assert isinstance(decoded, MalformedQuery)
        assert "question_id" in decoded.message

    def test_version_mismatch(self):
        decoded = query_from_wire({"v": 99, "type": "score"})
        assert isinstance(decoded, UnsupportedVersion)
        assert isinstance(decoded, MalformedQuery)
        assert decoded.code == "unsupported_version"
        assert "version" in decoded.message
        assert decoded.detail("supported") == \
            list(SUPPORTED_PROTOCOL_VERSIONS)

    def test_non_object_payload(self):
        assert isinstance(query_from_wire([1, 2]), MalformedQuery)

    def test_batch_without_queries_list(self):
        assert isinstance(query_from_wire({"v": 1, "type": "batch"}),
                          MalformedQuery)

    def test_bad_nested_edit(self):
        payload = to_wire(QUERIES[3])
        payload["edits"][0].pop("position")
        assert isinstance(query_from_wire(payload), MalformedQuery)

    def test_reply_decode_raises_for_broken_server(self):
        with pytest.raises(ValueError, match="unknown reply type"):
            reply_from_wire({"type": "gibberish"})


class TestLocalOnlyFields:
    def test_computation_never_crosses_the_wire(self):
        reply = ExplainReply("amy", 3, 1, 0.5, (), computation=object())
        payload = to_wire(reply)
        assert "computation" not in payload
        decoded = reply_from_wire(json.loads(json.dumps(payload)))
        assert decoded.computation is None

    def test_is_error_discriminates(self):
        assert is_error(ERRORS[0]) and not is_error(REPLIES[0])
        assert not ERRORS[0].ok and REPLIES[0].ok


# ---------------------------------------------------------------------------
# Protocol v2: version negotiation
# ---------------------------------------------------------------------------
class TestVersionNegotiation:
    RECOURSE = QUERIES[5]

    def test_current_version_is_two_and_one_still_supported(self):
        assert PROTOCOL_VERSION == 2
        assert SUPPORTED_PROTOCOL_VERSIONS == (1, 2)

    @pytest.mark.parametrize("query", [q for q in QUERIES
                                       if not isinstance(q, RecourseQuery)],
                             ids=lambda q: type(q).__name__)
    def test_v1_envelopes_still_round_trip(self, query):
        payload = json.loads(json.dumps(to_wire(query, version=1)))
        assert payload["v"] == 1
        assert query_from_wire(payload) == query

    def test_recourse_round_trips_at_v2(self):
        payload = json.loads(json.dumps(to_wire(self.RECOURSE)))
        assert payload["v"] == 2
        assert query_from_wire(payload) == self.RECOURSE

    def test_recourse_under_v1_is_unknown_query_type(self):
        payload = to_wire(self.RECOURSE)
        payload["v"] = 1
        decoded = query_from_wire(payload)
        assert isinstance(decoded, UnknownQueryType)
        assert decoded.detail("requires") == 2
        assert "v1" in decoded.message

    def test_batch_threads_the_outer_version_into_nested_slots(self):
        # Nested queries carry no "v": the envelope's version gates
        # them, so a v1 batch cannot smuggle a v2-only query in.
        payload = to_wire(BatchEnvelope((QUERIES[0], self.RECOURSE)))
        for nested in payload["queries"]:
            nested.pop("v", None)
        v2 = query_from_wire(json.loads(json.dumps(payload)))
        assert v2.queries[1] == self.RECOURSE
        payload["v"] = 1
        v1 = query_from_wire(json.loads(json.dumps(payload)))
        assert v1.queries[0] == QUERIES[0]
        assert isinstance(v1.queries[1], UnknownQueryType)

    def test_missing_version_defaults_to_current(self):
        payload = to_wire(self.RECOURSE)
        del payload["v"]
        assert query_from_wire(payload) == self.RECOURSE

    def test_to_wire_rejects_unsupported_versions(self):
        with pytest.raises(ValueError, match="version"):
            to_wire(QUERIES[0], version=99)

    def test_negotiated_version(self):
        assert negotiated_version({"v": 1, "type": "score"}) == 1
        assert negotiated_version({"v": 2, "type": "score"}) == 2
        assert negotiated_version({"type": "score"}) == PROTOCOL_VERSION
        assert negotiated_version({"v": 99}) == PROTOCOL_VERSION
        assert negotiated_version("garbage") == PROTOCOL_VERSION

    def test_query_types_per_version(self):
        assert "recourse" not in query_types_for(1)
        assert "recourse" in query_types_for(2)
        assert set(query_types_for(1)) | {"recourse"} == \
            set(query_types_for(2))

    def test_capabilities_enumerates_versions_and_codes(self):
        caps = capabilities()
        assert caps["protocol_version"] == PROTOCOL_VERSION
        assert caps["protocol_versions"] == \
            list(SUPPORTED_PROTOCOL_VERSIONS)
        assert caps["query_types"] == list(query_types_for(2))
        assert caps["query_types_by_version"]["1"] == \
            list(query_types_for(1))
        assert "unsupported_version" in caps["error_codes"]
        assert "unknown_query_type" in caps["error_codes"]
        # Health replies are JSON: the whole dict must serialize.
        json.dumps(caps)

    def test_trajectory_property(self):
        reply = REPLIES[5]
        assert reply.trajectory == (0.55, 0.61, 0.82)
