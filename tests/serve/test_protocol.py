"""Wire codec and typed-value semantics of the v1 query protocol."""

import json

import pytest

from repro.serve import protocol
from repro.serve.protocol import (PROTOCOL_VERSION, BatchEnvelope,
                                  CandidateQuestion, ExplainReply,
                                  HistoryEdit, InfluenceItem,
                                  InvalidQuestion, MalformedQuery,
                                  RecommendQuery, RecommendReply,
                                  RecommendationItem, RecordEvent,
                                  RecordReply, ScoreQuery, ScoreReply,
                                  UnknownStudent, WhatIfQuery, WhatIfReply,
                                  is_error, query_from_wire,
                                  reply_from_wire, to_wire)

QUERIES = [
    ScoreQuery("amy", 7, (3, 4)),
    ScoreQuery(17, 2, (1,), model="canary"),
    protocol.ExplainQuery("amy"),
    WhatIfQuery("amy", 7, (3,), (HistoryEdit(0, "flip"),
                                 HistoryEdit(2, "set", value=1),
                                 HistoryEdit(4, "remove"))),
    RecommendQuery("amy", (CandidateQuestion(4, (1,)),
                           CandidateQuestion(9, (2, 5))),
                   top_k=3, target_success=0.7, horizon=2),
    RecordEvent("amy", 3, 1, (2,)),
]

REPLIES = [
    ScoreReply("amy", 7, 0.625, 6),
    WhatIfReply("amy", 7, 0.5, 0.625, 5, model="canary"),
    RecordReply("amy", 7),
    ExplainReply("amy", 3, 1, 0.5,
                 (InfluenceItem(0, 4, 1, 0.01), InfluenceItem(1, 5, 0, -0.02))),
    RecommendReply("amy", (RecommendationItem(4, (1,), 0.6, 0.1, 0.7),)),
]

ERRORS = [
    UnknownStudent("who?", details={"student_id": "ghost"}),
    InvalidQuestion("bad question", details={"question_id": 999,
                                             "valid_range": (1, 50)}),
    MalformedQuery("nonsense"),
]


class TestWireRoundTrip:
    @pytest.mark.parametrize("query", QUERIES,
                             ids=lambda q: type(q).__name__)
    def test_query_round_trip(self, query):
        payload = json.loads(json.dumps(to_wire(query)))
        assert payload["v"] == PROTOCOL_VERSION
        decoded = query_from_wire(payload)
        assert decoded == query

    @pytest.mark.parametrize("reply", REPLIES,
                             ids=lambda r: type(r).__name__)
    def test_reply_round_trip(self, reply):
        payload = json.loads(json.dumps(to_wire(reply)))
        decoded = reply_from_wire(payload)
        assert decoded == reply
        assert decoded.ok

    @pytest.mark.parametrize("error", ERRORS,
                             ids=lambda e: type(e).__name__)
    def test_error_round_trip(self, error):
        payload = json.loads(json.dumps(to_wire(error)))
        assert payload["type"] == "error"
        assert payload["code"] == error.code
        decoded = reply_from_wire(payload)
        assert type(decoded) is type(error)
        assert decoded.message == error.message
        assert not decoded.ok

    def test_batch_envelope_round_trip(self):
        envelope = BatchEnvelope((QUERIES[0], QUERIES[3]))
        decoded = query_from_wire(json.loads(json.dumps(to_wire(envelope))))
        assert decoded == envelope

    def test_wire_tuple_range_survives_json(self):
        # JSON has no tuples: details round-trip value-equal modulo
        # list/tuple, which `detail` normalizes for the caller.
        error = reply_from_wire(json.loads(json.dumps(to_wire(ERRORS[1]))))
        assert list(error.detail("valid_range")) == [1, 50]


class TestDecodeFailuresAreValues:
    def test_unknown_type(self):
        decoded = query_from_wire({"v": 1, "type": "teleport"})
        assert isinstance(decoded, MalformedQuery)
        assert "teleport" in decoded.message

    def test_missing_field(self):
        decoded = query_from_wire({"v": 1, "type": "score",
                                   "student_id": "amy"})
        assert isinstance(decoded, MalformedQuery)
        assert "question_id" in decoded.message

    def test_version_mismatch(self):
        decoded = query_from_wire({"v": 99, "type": "score"})
        assert isinstance(decoded, MalformedQuery)
        assert "version" in decoded.message

    def test_non_object_payload(self):
        assert isinstance(query_from_wire([1, 2]), MalformedQuery)

    def test_batch_without_queries_list(self):
        assert isinstance(query_from_wire({"v": 1, "type": "batch"}),
                          MalformedQuery)

    def test_bad_nested_edit(self):
        payload = to_wire(QUERIES[3])
        payload["edits"][0].pop("position")
        assert isinstance(query_from_wire(payload), MalformedQuery)

    def test_reply_decode_raises_for_broken_server(self):
        with pytest.raises(ValueError, match="unknown reply type"):
            reply_from_wire({"type": "gibberish"})


class TestLocalOnlyFields:
    def test_computation_never_crosses_the_wire(self):
        reply = ExplainReply("amy", 3, 1, 0.5, (), computation=object())
        payload = to_wire(reply)
        assert "computation" not in payload
        decoded = reply_from_wire(json.loads(json.dumps(payload)))
        assert decoded.computation is None

    def test_is_error_discriminates(self):
        assert is_error(ERRORS[0]) and not is_error(REPLIES[0])
        assert not ERRORS[0].ok and REPLIES[0].ok
