"""Registry hot swap under concurrent reads/records (satellite of the
cluster PR): replies are never torn across checkpoints, and failures —
if any — are taxonomy values, never exceptions."""

import threading

import numpy as np
import pytest

from repro.core import RCKT, RCKTConfig
from repro.serve import (InferenceEngine, RecordEvent, ScoreQuery, Service,
                         is_error)

NUM_QUESTIONS = 30
NUM_CONCEPTS = 5
#: Scores under the two checkpoints differ macroscopically (different
#: init seeds), so tolerance-based membership cleanly detects a torn
#: (mixed-weights) reply.
MEMBER_ATOL = 1e-9


def make_model(seed):
    return RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                RCKTConfig(encoder="dkt", dim=8, layers=1, seed=seed))


def load_records(engine, students, per_student=5, seed=31):
    rng = np.random.default_rng(seed)
    for student in students:
        for _ in range(per_student):
            engine.record(student, int(rng.integers(1, NUM_QUESTIONS + 1)),
                          int(rng.integers(0, 2)),
                          (int(rng.integers(1, NUM_CONCEPTS + 1)),))


@pytest.fixture()
def checkpoints(tmp_path):
    paths = {}
    for label, seed in (("blue", 1), ("green", 9)):
        path = tmp_path / f"{label}.npz"
        InferenceEngine(make_model(seed)).save(path)
        paths[label] = path
    return paths


def expected_scores(students, probe, seed):
    """Per-student probe score under one checkpoint's weights."""
    engine = InferenceEngine(make_model(seed))
    load_records(engine, students)
    scores = {student: engine.service.execute(
                  ScoreQuery(student, probe[0], tuple(probe[1]))).score
              for student in students}
    engine.close()
    return scores


class TestSwapUnderConcurrency:
    def _run(self, service, students, probe, swap, iterations=40,
             readers=4):
        """Hammer reads from ``readers`` threads while ``swap()`` flips
        checkpoints on the main thread; returns (replies, exceptions)."""
        replies = []
        exceptions = []
        lock = threading.Lock()
        stop = threading.Event()

        def read_loop():
            rng = np.random.default_rng()
            try:
                while not stop.is_set():
                    student = students[int(rng.integers(len(students)))]
                    reply = service.execute(ScoreQuery(student, probe[0],
                                                       probe[1]))
                    with lock:
                        replies.append((student, reply))
            except Exception as error:  # noqa: BLE001 — must not happen
                exceptions.append(error)

        threads = [threading.Thread(target=read_loop)
                   for _ in range(readers)]
        for thread in threads:
            thread.start()
        try:
            for iteration in range(iterations):
                swap(iteration)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        return replies, exceptions

    @pytest.mark.parametrize("mechanism", ["swap", "rollout"])
    def test_reads_are_never_torn_across_checkpoints(self, checkpoints,
                                                     mechanism):
        students = [f"s{k}" for k in range(6)]
        probe = (7, (2,))
        blue_scores = expected_scores(students, probe, seed=1)
        green_scores = expected_scores(students, probe, seed=9)
        for student in students:
            assert abs(blue_scores[student]
                       - green_scores[student]) > 10 * MEMBER_ATOL

        engine = InferenceEngine.from_checkpoint(checkpoints["blue"])
        load_records(engine, students)
        service = Service(engine)

        def swap(iteration):
            target = checkpoints["green" if iteration % 2 == 0 else "blue"]
            if mechanism == "swap":
                service.registry.swap("default", target)
            else:
                service.rollout(target, warm_top=4)

        replies, exceptions = self._run(service, students, probe, swap)
        service.close()
        assert not exceptions
        assert len(replies) > 20
        torn = []
        for student, reply in replies:
            assert reply.ok, f"taxonomy failure mid-swap: {reply}"
            near_blue = abs(reply.score
                            - blue_scores[student]) < MEMBER_ATOL
            near_green = abs(reply.score
                             - green_scores[student]) < MEMBER_ATOL
            if not (near_blue or near_green):
                torn.append((student, reply.score))
        assert not torn, f"replies match neither checkpoint: {torn[:3]}"
        # Both weight generations were actually observed mid-run.
        generations = {abs(reply.score - blue_scores[student])
                       < MEMBER_ATOL for student, reply in replies}
        assert generations == {True, False}

    def test_records_survive_continuous_rollouts(self, checkpoints):
        students = [f"w{k}" for k in range(4)]
        engine = InferenceEngine.from_checkpoint(checkpoints["blue"])
        load_records(engine, students)
        service = Service(engine)
        base_length = service.engine().history_length(students[0])
        outcomes = []
        exceptions = []
        stop = threading.Event()

        def record_loop():
            step = 0
            try:
                while not stop.is_set():
                    student = students[step % len(students)]
                    reply = service.execute(RecordEvent(
                        student, 1 + step % NUM_QUESTIONS, step % 2,
                        (1 + step % NUM_CONCEPTS,)))
                    outcomes.append(reply)
                    step += 1
            except Exception as error:  # noqa: BLE001 — must not happen
                exceptions.append(error)

        recorder = threading.Thread(target=record_loop)
        recorder.start()
        try:
            for iteration in range(20):
                service.rollout(
                    checkpoints["green" if iteration % 2 == 0
                                else "blue"], warm_top=4)
        finally:
            stop.set()
            recorder.join(timeout=30.0)
        assert not exceptions
        assert outcomes and all(not is_error(reply) for reply in outcomes)
        # Every acknowledged record landed in the (shared) history
        # store, across 20 generations of engines.
        recorded = sum(1 for reply in outcomes)
        total = sum(service.engine().history_length(s) for s in students)
        assert total == recorded + base_length * len(students)
        service.close()
