"""AUC/ACC correctness, early stopping, significance testing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (EarlyStopping, accuracy_score, auc_score,
                        is_significant, paired_t_test)


class TestAUC:
    def test_perfect_separation(self):
        assert auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_perfect_inversion(self):
        assert auc_score([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=5000)
        scores = rng.random(5000)
        assert abs(auc_score(labels, scores) - 0.5) < 0.03

    def test_ties_get_midrank(self):
        # One positive and one negative share the same score: AUC 0.5.
        assert auc_score([0, 1], [0.5, 0.5]) == 0.5

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            auc_score([1, 1], [0.3, 0.4])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            auc_score([1, 0], [0.5])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            auc_score([], [])

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_invariant_under_monotone_transform(self, seed):
        """The property the RCKT score relies on (Sec. notes in DESIGN.md)."""
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=50)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        scores = rng.normal(size=50)
        a = auc_score(labels, scores)
        b = auc_score(labels, 1.0 / (1.0 + np.exp(-3.0 * scores)))
        assert np.isclose(a, b)

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 2, size=60)
        labels[0], labels[1] = 0, 1
        scores = rng.random(60)
        positives = scores[labels == 1]
        negatives = scores[labels == 0]
        wins = sum((p > n) + 0.5 * (p == n)
                   for p in positives for n in negatives)
        expected = wins / (len(positives) * len(negatives))
        assert np.isclose(auc_score(labels, scores), expected)


class TestAccuracy:
    def test_basic(self):
        assert accuracy_score([1, 0, 1], [0.9, 0.1, 0.2]) == pytest.approx(2 / 3)

    def test_custom_threshold(self):
        # RCKT thresholds the raw influence gap at 0 (score 0.5).
        assert accuracy_score([1, 0], [0.6, 0.4], threshold=0.5) == 1.0
        assert accuracy_score([1, 0], [0.6, 0.4], threshold=0.7) == 0.5

    def test_threshold_boundary_counts_as_positive(self):
        assert accuracy_score([1], [0.5], threshold=0.5) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=3)
        assert not stopper.update(0.8, 0, {"w": np.zeros(1)})
        assert not stopper.update(0.7, 1)
        assert not stopper.update(0.7, 2)
        assert stopper.update(0.7, 3)

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5, 0)
        stopper.update(0.4, 1)
        assert not stopper.update(0.6, 2)   # improvement
        assert not stopper.update(0.5, 3)
        assert stopper.update(0.5, 4)

    def test_best_state_kept(self):
        stopper = EarlyStopping(patience=5)
        stopper.update(0.9, 0, {"w": np.array([1.0])})
        stopper.update(0.7, 1, {"w": np.array([2.0])})
        assert stopper.best_epoch == 0
        assert stopper.best_state["w"][0] == 1.0

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestSignificance:
    def test_clear_difference_significant(self):
        a = [0.80, 0.81, 0.79, 0.82, 0.80]
        b = [0.70, 0.71, 0.69, 0.72, 0.70]
        t, p = paired_t_test(a, b)
        assert t > 0 and p < 0.01
        assert is_significant(a, b)

    def test_no_difference_not_significant(self):
        a = [0.75, 0.76, 0.74, 0.75, 0.76]
        b = [0.75, 0.76, 0.74, 0.76, 0.75]
        assert not is_significant(a, b)

    def test_wrong_direction_not_significant(self):
        a = [0.70, 0.71, 0.69]
        b = [0.80, 0.81, 0.79]
        assert not is_significant(a, b)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [1.0, 2.0])
