"""Optimizer behaviour: convergence, weight decay, clipping."""

import numpy as np
import pytest

from repro import nn, optim
from repro.tensor import Tensor


def quadratic_loss(param):
    target = Tensor(np.array([3.0, -2.0]))
    diff = param - target
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = optim.SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, [3.0, -2.0], atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Tensor(np.zeros(2), requires_grad=True)
            opt = optim.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return quadratic_loss(p).item()

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = optim.SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 10.0

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            optim.SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        opt = optim.Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, [3.0, -2.0], atol=1e-2)

    def test_skips_params_without_grad(self):
        p1 = Tensor(np.zeros(2), requires_grad=True)
        p2 = Tensor(np.ones(2), requires_grad=True)
        opt = optim.Adam([p1, p2], lr=0.1)
        opt.zero_grad()
        quadratic_loss(p1).backward()
        opt.step()
        assert np.allclose(p2.data, 1.0)

    def test_trains_a_network_to_overfit(self):
        """End-to-end: a tiny MLP memorizes 8 random binary labels."""
        rng = np.random.default_rng(3)
        net = nn.MLP([4, 16, 1], rng)
        x = Tensor(rng.normal(size=(8, 4)))
        y = (rng.random(8) > 0.5).astype(float)
        opt = optim.Adam(net.parameters(), lr=0.05)
        from repro.tensor import binary_cross_entropy
        for _ in range(200):
            opt.zero_grad()
            probs = net(x).sigmoid().reshape(8)
            binary_cross_entropy(probs, y).backward()
            opt.step()
        preds = (net(x).sigmoid().data.reshape(8) > 0.5).astype(float)
        assert np.array_equal(preds, y)


class TestClipping:
    def test_clips_large_norm(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 100.0)
        pre = optim.clip_grad_norm([p], max_norm=1.0)
        assert pre > 1.0
        assert np.isclose(np.linalg.norm(p.grad), 1.0)

    def test_leaves_small_norm(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.full(4, 0.01)
        optim.clip_grad_norm([p], max_norm=1.0)
        assert np.allclose(p.grad, 0.01)

    def test_ignores_gradless(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        assert optim.clip_grad_norm([p], max_norm=1.0) == 0.0
