"""End-to-end integration: the full user journey on one small corpus.

simulate -> preprocess -> CSV round-trip -> 5-fold CV split -> train RCKT
-> evaluate -> explain -> trace proficiency -> recommend -> checkpoint ->
reload -> identical predictions.
"""

import numpy as np
import pytest

from repro.core import RCKT, RCKTConfig, evaluate_rckt, fit_rckt
from repro.data import (Interaction, collate, k_fold_splits, load_csv,
                        make_eedi, save_csv)
from repro.interpret import (explain_prediction, recommend_questions,
                             related_questions, trace_proficiency)
from repro.utils import load_model, save_model


@pytest.fixture(scope="module")
def journey(tmp_path_factory):
    root = tmp_path_factory.mktemp("journey")
    dataset = make_eedi(scale=0.12, seed=21)

    # Persistence round-trip feeds the rest of the pipeline.
    csv_path = root / "eedi.csv"
    save_csv(dataset, csv_path)
    reloaded = load_csv(csv_path, name="eedi",
                        num_questions=dataset.num_questions,
                        num_concepts=dataset.num_concepts)

    fold = next(k_fold_splits(reloaded, k=5, seed=0))
    config = RCKTConfig(encoder="dkt", dim=8, layers=1, epochs=2,
                        batch_size=16, lr=3e-3, seed=0)
    model = RCKT(reloaded.num_questions, reloaded.num_concepts, config)
    fit_rckt(model, fold.train, fold.validation, eval_stride=3)
    return root, reloaded, fold, model, config


class TestEndToEnd:
    def test_dataset_round_trip_preserved(self, journey):
        _, dataset, _, _, _ = journey
        assert dataset.num_responses > 0

    def test_evaluation_works(self, journey):
        _, _, fold, model, _ = journey
        metrics = evaluate_rckt(model, fold.test, stride=2)
        assert 0.0 <= metrics["auc"] <= 1.0
        assert 0.0 <= metrics["acc"] <= 1.0

    def test_explanation_pipeline(self, journey):
        _, _, fold, model, _ = journey
        sequence = next(s for s in fold.test if len(s) >= 6)
        explanation = explain_prediction(model, sequence[:6])
        assert len(explanation.rows) == 5
        assert "prediction:" in explanation.render()

    def test_proficiency_pipeline(self, journey):
        _, dataset, fold, model, _ = journey
        sequence = next(s for s in fold.test if len(s) >= 6)[:6]
        concept = sequence[0].concept_ids[0]
        pool = related_questions(dataset, concept)
        trace = trace_proficiency(model, sequence, concept, pool,
                                  steps=[2, 4])
        assert trace.proficiencies.shape == (2,)

    def test_recommendation_pipeline(self, journey):
        _, dataset, fold, model, _ = journey
        sequence = next(s for s in fold.test if len(s) >= 6)[:6]
        candidates = [Interaction(q, 1, (1,))
                      for q in range(1, 5)]
        recs = recommend_questions(model, sequence, candidates, top_k=2)
        assert len(recs) == 2

    def test_checkpoint_round_trip_predictions(self, journey):
        root, dataset, fold, model, config = journey
        path = root / "rckt.npz"
        save_model(path, model, metadata={"encoder": config.encoder})
        clone = RCKT(dataset.num_questions, dataset.num_concepts, config)
        meta = load_model(path, clone)
        assert meta["encoder"] == "dkt"
        sequence = fold.test[0]
        batch = collate([sequence])
        cols = np.array([len(sequence) - 1])
        assert np.allclose(model.predict_scores(batch, cols),
                           clone.predict_scores(batch, cols))

    def test_folds_cover_everything_once(self, journey):
        _, dataset, _, _, _ = journey
        seen = []
        for fold in k_fold_splits(dataset, k=5, seed=0):
            seen.extend(id(s) for s in fold.test)
        assert len(seen) == len(dataset)
        assert len(set(seen)) == len(seen)
