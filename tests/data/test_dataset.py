"""Preprocessing rules from Sec. V-A1 and dataset invariants."""

import pytest

from repro.data import (Interaction, KTDataset, StudentSequence,
                        build_dataset, preprocess)


def make_student(length, student_id=1):
    seq = StudentSequence(student_id)
    for i in range(length):
        seq.append(Interaction((i % 5) + 1, i % 2, ((i % 3) + 1,), i))
    return seq


class TestPreprocess:
    def test_long_sequence_split_at_50(self):
        out = preprocess([make_student(120)])
        assert [len(s) for s in out] == [50, 50, 20]

    def test_short_tail_dropped(self):
        # 103 = 50 + 50 + 3; the 3-length tail is below the minimum of 5.
        out = preprocess([make_student(103)])
        assert [len(s) for s in out] == [50, 50]

    def test_short_sequence_dropped_entirely(self):
        assert preprocess([make_student(4)]) == []

    def test_exactly_minimum_kept(self):
        out = preprocess([make_student(5)])
        assert len(out) == 1 and len(out[0]) == 5

    def test_multiple_students(self):
        out = preprocess([make_student(60, 1), make_student(10, 2)])
        assert len(out) == 3
        assert {s.student_id for s in out} == {1, 2}

    def test_custom_lengths(self):
        out = preprocess([make_student(25)], max_length=10, min_length=3)
        assert [len(s) for s in out] == [10, 10, 5]


class TestKTDataset:
    def test_counts(self):
        ds = build_dataset("toy", [make_student(60)], 5, 3)
        assert ds.num_responses == 60
        assert len(ds) == 2

    def test_correct_rate(self):
        ds = build_dataset("toy", [make_student(50)], 5, 3)
        assert ds.correct_rate == pytest.approx(0.5)

    def test_validate_rejects_oversized_question(self):
        ds = KTDataset("bad", [make_student(10)], num_questions=2, num_concepts=3)
        with pytest.raises(ValueError):
            ds.validate()

    def test_validate_rejects_oversized_concept(self):
        ds = KTDataset("bad", [make_student(10)], num_questions=5, num_concepts=1)
        with pytest.raises(ValueError):
            ds.validate()

    def test_subset_preserves_vocab(self):
        ds = build_dataset("toy", [make_student(60, i) for i in range(1, 4)], 5, 3)
        sub = ds.subset([0, 1])
        assert len(sub) == 2
        assert sub.num_questions == ds.num_questions

    def test_empty_dataset_rates(self):
        ds = KTDataset("empty", [], 5, 3)
        assert ds.correct_rate == 0.0 and ds.num_responses == 0
