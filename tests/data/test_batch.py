"""Batch collation: padding, masks, ragged concept sets."""

import numpy as np
import pytest

from repro.data import (Interaction, StudentSequence, collate,
                        expand_targets, iterate_batches)


def seq_of(lengths_concepts, student_id=1):
    seq = StudentSequence(student_id)
    for i, concepts in enumerate(lengths_concepts):
        seq.append(Interaction(i + 1, 1, concepts, i))
    return seq


class TestCollate:
    def test_shapes_and_mask(self):
        a = seq_of([(1,), (2,), (3,)])
        b = seq_of([(1,)])
        batch = collate([a, b])
        assert batch.questions.shape == (2, 3)
        assert batch.mask.tolist() == [[True, True, True], [True, False, False]]

    def test_pad_to_fixed_length(self):
        batch = collate([seq_of([(1,), (2,)])], pad_to=50)
        assert batch.length == 50
        assert batch.mask.sum() == 2
        assert batch.questions[0, 2:].sum() == 0

    def test_pad_to_too_small_raises(self):
        with pytest.raises(ValueError):
            collate([seq_of([(1,)] * 5)], pad_to=3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            collate([])

    def test_ragged_concepts(self):
        batch = collate([seq_of([(1, 2, 3), (2,)])])
        assert batch.concepts.shape == (1, 2, 3)
        assert batch.concepts[0, 0].tolist() == [1, 2, 3]
        assert batch.concepts[0, 1].tolist() == [2, 0, 0]
        assert batch.concept_counts[0].tolist() == [3, 1]

    def test_padding_counts_are_safe(self):
        """Padded steps keep count 1 so mean-divisions never hit zero."""
        batch = collate([seq_of([(1,)])], pad_to=4)
        assert np.all(batch.concept_counts >= 1)

    def test_lengths(self):
        batch = collate([seq_of([(1,)] * 3), seq_of([(1,)] * 5)])
        assert batch.lengths().tolist() == [3, 5]

    def test_responses_recorded(self):
        seq = StudentSequence(1)
        seq.append(Interaction(1, 0, (1,)))
        seq.append(Interaction(2, 1, (1,)))
        batch = collate([seq])
        assert batch.responses[0].tolist() == [0, 1]


class TestIterateBatches:
    def _sequences(self, n):
        return [seq_of([(1,)] * 5, student_id=i) for i in range(n)]

    def test_covers_all_sequences(self):
        batches = list(iterate_batches(self._sequences(10), 3))
        assert sum(b.batch_size for b in batches) == 10

    def test_shuffling_changes_order(self):
        seqs = self._sequences(32)
        fixed = [b.questions.copy() for b in iterate_batches(seqs, 32)]
        shuffled = [b.questions.copy() for b in
                    iterate_batches(seqs, 32, rng=np.random.default_rng(0))]
        # With 32 sequences the chance of an identical permutation is ~0.
        students_fixed = [s.student_id for s in seqs]
        assert len(fixed) == len(shuffled) == 1

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_batches(self._sequences(3), 0))


class TestExpandTargets:
    def _batch(self):
        a = seq_of([(1,), (2,), (3,), (1,)])
        b = seq_of([(2,), (3,)], student_id=2)
        return collate([a, b])

    def test_rows_share_content_and_truncate_mask(self):
        batch = self._batch()
        expanded = expand_targets(batch, np.array([0, 0, 1]),
                                  np.array([1, 3, 1]))
        assert expanded.batch_size == 3
        # Content is gathered verbatim from the source rows...
        np.testing.assert_array_equal(expanded.questions[0],
                                      batch.questions[0])
        np.testing.assert_array_equal(expanded.questions[2],
                                      batch.questions[1])
        # ...but the mask ends right after each target.
        assert expanded.mask[0].tolist() == [True, True, False, False]
        assert expanded.mask[1].tolist() == [True] * 4
        assert expanded.mask[2].tolist() == [True, True, False, False]

    def test_rejects_padding_targets(self):
        batch = self._batch()
        with pytest.raises(ValueError, match="real response"):
            expand_targets(batch, np.array([1]), np.array([3]))
        with pytest.raises(ValueError, match="out of range"):
            expand_targets(batch, np.array([0]), np.array([4]))
        with pytest.raises(ValueError, match="1-D"):
            expand_targets(batch, np.array([0, 1]), np.array([1]))

    def test_truncated_drops_trailing_columns(self):
        batch = self._batch()
        trimmed = batch.truncated(2)
        assert trimmed.length == 2
        np.testing.assert_array_equal(trimmed.questions,
                                      batch.questions[:, :2])
        # Truncating to the current length is a no-op (same object).
        assert batch.truncated(4) is batch
        assert batch.truncated(9) is batch
