"""CSV round-trips."""

import pytest

from repro.data import load_csv, make_assist09, save_csv


class TestRoundTrip:
    def test_dataset_roundtrip(self, tmp_path):
        original = make_assist09(scale=0.1, seed=5)
        path = tmp_path / "data.csv"
        save_csv(original, path)
        loaded = load_csv(path, name="assist09",
                          num_questions=original.num_questions,
                          num_concepts=original.num_concepts)
        assert len(loaded) == len(original)
        assert loaded.num_responses == original.num_responses
        for left, right in zip(original, loaded):
            assert left.question_ids == right.question_ids
            assert left.responses == right.responses
            for a, b in zip(left, right):
                assert a.concept_ids == b.concept_ids

    def test_vocab_inferred_when_omitted(self, tmp_path):
        original = make_assist09(scale=0.1, seed=5)
        path = tmp_path / "data.csv"
        save_csv(original, path)
        loaded = load_csv(path)
        assert loaded.num_questions <= original.num_questions
        loaded.validate()

    def test_missing_column_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("student_id,position\n1,0\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_sequence_ids_separate_subsequences(self, tmp_path):
        path = tmp_path / "two.csv"
        path.write_text(
            "student_id,sequence_id,position,question_id,correct,concept_ids\n"
            "7,0,0,1,1,1\n7,0,1,2,0,1\n7,1,0,3,1,2\n7,1,1,4,1,2\n")
        loaded = load_csv(path)
        assert len(loaded) == 2
        assert loaded[0].question_ids == [1, 2]
        assert loaded[1].question_ids == [3, 4]

    def test_rows_reordered_by_position(self, tmp_path):
        path = tmp_path / "shuffled.csv"
        path.write_text(
            "student_id,sequence_id,position,question_id,correct,concept_ids\n"
            "7,0,1,2,0,1\n7,0,0,1,1,1\n")
        loaded = load_csv(path)
        assert loaded[0].question_ids == [1, 2]
