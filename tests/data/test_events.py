"""Interaction and StudentSequence invariants."""

import pytest

from repro.data import Interaction, StudentSequence


def make_seq(pattern, student_id=1):
    seq = StudentSequence(student_id)
    for i, correct in enumerate(pattern):
        seq.append(Interaction(i + 1, correct, (1,), i))
    return seq


class TestInteraction:
    def test_valid_construction(self):
        it = Interaction(3, 1, (2, 5), 7)
        assert it.question_id == 3 and it.correct == 1

    def test_rejects_pad_question(self):
        with pytest.raises(ValueError):
            Interaction(0, 1, (1,))

    def test_rejects_bad_correctness(self):
        with pytest.raises(ValueError):
            Interaction(1, 2, (1,))

    def test_rejects_empty_concepts(self):
        with pytest.raises(ValueError):
            Interaction(1, 1, ())

    def test_rejects_pad_concept(self):
        with pytest.raises(ValueError):
            Interaction(1, 1, (0,))

    def test_frozen(self):
        it = Interaction(1, 1, (1,))
        with pytest.raises(AttributeError):
            it.correct = 0


class TestStudentSequence:
    def test_len_iter(self):
        seq = make_seq([1, 0, 1])
        assert len(seq) == 3
        assert [i.correct for i in seq] == [1, 0, 1]

    def test_accessors(self):
        seq = make_seq([1, 0])
        assert seq.question_ids == [1, 2]
        assert seq.responses == [1, 0]
        assert seq.correct_rate == 0.5

    def test_empty_correct_rate(self):
        assert StudentSequence(1).correct_rate == 0.0

    def test_slice_returns_sequence(self):
        seq = make_seq([1, 0, 1, 1])
        sub = seq[1:3]
        assert isinstance(sub, StudentSequence)
        assert sub.responses == [0, 1]

    def test_split_exact_chunks(self):
        seq = make_seq([1] * 10)
        chunks = seq.split(5)
        assert [len(c) for c in chunks] == [5, 5]

    def test_split_remainder(self):
        seq = make_seq([1] * 7)
        assert [len(c) for c in seq.split(3)] == [3, 3, 1]

    def test_split_preserves_order(self):
        seq = make_seq([1, 0, 1, 0])
        chunks = seq.split(2)
        assert chunks[0].question_ids == [1, 2]
        assert chunks[1].question_ids == [3, 4]

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            make_seq([1]).split(0)
