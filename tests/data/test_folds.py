"""Five-fold CV protocol (Sec. V-A2): disjoint, covering, 10% validation."""

import pytest

from repro.data import (Interaction, KTDataset, StudentSequence,
                        k_fold_splits, train_test_split)


def toy_dataset(n=50):
    sequences = []
    for sid in range(n):
        seq = StudentSequence(sid)
        for i in range(6):
            seq.append(Interaction(i + 1, 1, (1,), i))
        sequences.append(seq)
    return KTDataset("toy", sequences, 6, 1)


def ids(dataset):
    return {s.student_id for s in dataset}


class TestKFold:
    def test_five_folds_partition_test_sets(self):
        ds = toy_dataset()
        folds = list(k_fold_splits(ds, k=5, seed=3))
        assert len(folds) == 5
        all_test = [sid for f in folds for sid in ids(f.test)]
        assert sorted(all_test) == list(range(50))

    def test_within_fold_disjoint(self):
        for fold in k_fold_splits(toy_dataset(), k=5, seed=1):
            assert not (ids(fold.train) & ids(fold.test))
            assert not (ids(fold.train) & ids(fold.validation))
            assert not (ids(fold.validation) & ids(fold.test))

    def test_fold_union_is_everything(self):
        for fold in k_fold_splits(toy_dataset(), k=5, seed=1):
            union = ids(fold.train) | ids(fold.validation) | ids(fold.test)
            assert union == set(range(50))

    def test_validation_fraction(self):
        fold = next(k_fold_splits(toy_dataset(100), k=5, seed=0))
        # 80 non-test sequences -> 8 validation.
        assert len(fold.validation) == 8

    def test_deterministic_given_seed(self):
        a = [ids(f.test) for f in k_fold_splits(toy_dataset(), k=5, seed=9)]
        b = [ids(f.test) for f in k_fold_splits(toy_dataset(), k=5, seed=9)]
        assert a == b

    def test_too_few_sequences_raises(self):
        with pytest.raises(ValueError):
            list(k_fold_splits(toy_dataset(3), k=5))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            list(k_fold_splits(toy_dataset(), k=1))


class TestTrainTestSplit:
    def test_fractions(self):
        fold = train_test_split(toy_dataset(100), test_fraction=0.2,
                                validation_fraction=0.1, seed=0)
        assert len(fold.test) == 20
        assert len(fold.validation) == 8
        assert len(fold.train) == 72

    def test_disjoint_and_covering(self):
        fold = train_test_split(toy_dataset(40), seed=2)
        union = ids(fold.train) | ids(fold.validation) | ids(fold.test)
        assert union == set(range(40))
        assert not (ids(fold.train) & ids(fold.test))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(toy_dataset(), test_fraction=1.5)
