"""Simulator behaviour: monotonicity, calibration, graphs, profiles."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (SimulationConfig, StudentSimulator,
                        build_concept_graph, build_question_bank,
                        compute_stats, leaf_concepts, make_dataset)


def small_config(**overrides):
    defaults = dict(num_students=10, num_questions=30, num_concepts=8,
                    sequence_length=(10, 20), calibration_students=6,
                    calibration_rounds=2)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConceptGraph:
    def test_prerequisite_connected_dag_shape(self):
        g = build_concept_graph(10, "prerequisite", np.random.default_rng(0))
        assert g.number_of_nodes() == 10
        assert nx.is_connected(g)

    def test_tree_structure(self):
        g = build_concept_graph(7, "tree", np.random.default_rng(0))
        assert nx.is_tree(g)

    def test_clusters_have_edges(self):
        g = build_concept_graph(12, "clusters", np.random.default_rng(0))
        assert g.number_of_edges() > 0

    def test_nodes_one_based(self):
        for structure in ("prerequisite", "tree", "clusters"):
            g = build_concept_graph(6, structure, np.random.default_rng(1))
            assert min(g.nodes) >= 1

    def test_unknown_structure_raises(self):
        with pytest.raises(ValueError):
            build_concept_graph(5, "mystery", np.random.default_rng(0))

    def test_leaf_concepts_are_low_degree(self):
        g = build_concept_graph(15, "tree", np.random.default_rng(0))
        for leaf in leaf_concepts(g):
            assert g.degree(leaf) <= 1


class TestQuestionBank:
    def test_every_question_has_concepts(self):
        config = small_config()
        rng = np.random.default_rng(0)
        graph = build_concept_graph(config.num_concepts,
                                    config.concept_structure, rng)
        bank = build_question_bank(config, graph, rng)
        assert bank.num_questions == config.num_questions
        assert all(len(c) >= 1 for c in bank.concepts)

    def test_tree_profile_uses_leaves(self):
        config = small_config(concept_structure="tree", num_concepts=7)
        rng = np.random.default_rng(0)
        graph = build_concept_graph(7, "tree", rng)
        bank = build_question_bank(config, graph, rng)
        leaves = set(leaf_concepts(graph))
        primary_in_leaves = sum(1 for c in bank.concepts if c[0] in leaves
                                or set(c) & leaves)
        assert primary_in_leaves >= 0.9 * len(bank.concepts)


class TestMonotonicity:
    def test_probability_increases_with_proficiency(self):
        """Assumption 3.1: the response curve is monotone in proficiency."""
        simulator = StudentSimulator(small_config(), seed=0)
        for q in range(simulator.bank.num_questions):
            thetas = np.linspace(-3, 3, 13)
            probs = [simulator.correct_probability(t, q) for t in thetas]
            assert all(b >= a - 1e-12 for a, b in zip(probs, probs[1:]))

    def test_guess_slip_bounds(self):
        simulator = StudentSimulator(small_config(), seed=0)
        for q in range(simulator.bank.num_questions):
            low = simulator.correct_probability(-50.0, q)
            high = simulator.correct_probability(50.0, q)
            assert low == pytest.approx(simulator.bank.guess[q], abs=1e-9)
            assert high == pytest.approx(1 - simulator.bank.slip[q], abs=1e-9)


class TestSimulation:
    def test_sequence_lengths_in_range(self):
        simulator = StudentSimulator(small_config(), seed=0)
        for seq in simulator.simulate(seed=1):
            assert 10 <= len(seq) <= 20

    def test_deterministic_for_seed(self):
        a = StudentSimulator(small_config(), seed=7).simulate(seed=3)
        b = StudentSimulator(small_config(), seed=7).simulate(seed=3)
        assert [s.responses for s in a] == [s.responses for s in b]

    def test_calibration_reaches_target(self):
        config = small_config(num_students=40, target_correct_rate=0.75,
                              calibration_students=20, calibration_rounds=4)
        simulator = StudentSimulator(config, seed=0)
        responses = [r for s in simulator.simulate(seed=2) for r in s.responses]
        assert abs(np.mean(responses) - 0.75) < 0.08

    def test_learning_improves_late_accuracy(self):
        """Across many students, late responses beat early ones on average."""
        config = small_config(num_students=60, sequence_length=(40, 40),
                              learning_gain=0.4, target_correct_rate=0.6)
        simulator = StudentSimulator(config, seed=0)
        early, late = [], []
        for seq in simulator.simulate(seed=5):
            early.extend(seq.responses[:10])
            late.extend(seq.responses[-10:])
        assert np.mean(late) > np.mean(early)

    def test_adaptive_selection_runs(self):
        config = small_config(adaptive_selection=True)
        seqs = StudentSimulator(config, seed=0).simulate(seed=1)
        assert len(seqs) == config.num_students


class TestProfiles:
    @pytest.mark.parametrize("name,rate", [
        ("assist09", 0.63), ("assist12", 0.70),
        ("slepemapy", 0.78), ("eedi", 0.64),
    ])
    def test_correct_rates_near_table2(self, name, rate):
        ds = make_dataset(name, scale=0.25, seed=3)
        assert abs(ds.correct_rate - rate) < 0.09

    def test_assist09_concepts_per_question(self):
        stats = compute_stats(make_dataset("assist09", scale=0.3, seed=1))
        assert 1.0 < stats.concepts_per_question < 1.5

    def test_single_concept_profiles(self):
        for name in ("assist12", "slepemapy"):
            stats = compute_stats(make_dataset(name, scale=0.2, seed=1))
            assert stats.concepts_per_question == pytest.approx(1.0)

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            make_dataset("nope")

    def test_all_sequences_within_paper_bounds(self):
        ds = make_dataset("assist09", scale=0.2, seed=2)
        assert all(5 <= len(s) <= 50 for s in ds)


@settings(max_examples=10, deadline=None)
@given(st.floats(0.3, 0.9), st.integers(0, 3))
def test_calibration_property(target, seed):
    """Calibration lands within a tolerance band for any target rate."""
    config = SimulationConfig(num_students=20, num_questions=30,
                              num_concepts=8, sequence_length=(15, 25),
                              target_correct_rate=target,
                              calibration_students=12, calibration_rounds=4)
    simulator = StudentSimulator(config, seed=seed)
    responses = [r for s in simulator.simulate(seed=seed) for r in s.responses]
    # Band width: 20 students x ~20 responses leaves the calibration's
    # own bias plus ~0.025 sampling std on the mean; hypothesis found
    # seed cases (e.g. target=0.652, seed=0 -> |diff|=0.1325) where the
    # original 0.13 band was inside the tail of that distribution.
    assert abs(np.mean(responses) - target) < 0.16
