"""Tests for functional ops: concat/stack/where/embedding/softmax/dropout."""

import numpy as np
import pytest

from repro.tensor import (Tensor, binary_cross_entropy, concat, dropout,
                          embedding, log_softmax, masked_softmax, softmax,
                          stack, where)
from repro.utils import gradcheck

RNG = np.random.default_rng(7)


def leaf(*shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


class TestConcatStack:
    def test_concat_values(self):
        a, b = Tensor([[1.0]]), Tensor([[2.0]])
        assert np.allclose(concat([a, b], axis=1).data, [[1.0, 2.0]])

    def test_concat_grad(self):
        a, b = leaf(2, 3), leaf(2, 2)
        gradcheck(lambda x, y: (concat([x, y], axis=1) ** 2).sum(), [a, b])

    def test_concat_axis0_grad(self):
        a, b = leaf(1, 4), leaf(3, 4)
        gradcheck(lambda x, y: (concat([x, y], axis=0) ** 2).sum(), [a, b])

    def test_stack_grad(self):
        a, b = leaf(2, 3), leaf(2, 3)
        gradcheck(lambda x, y: (stack([x, y], axis=1) ** 2).sum(), [a, b])

    def test_stack_shape(self):
        parts = [leaf(4) for _ in range(3)]
        assert stack(parts, axis=0).shape == (3, 4)
        assert stack(parts, axis=1).shape == (4, 3)


class TestWhere:
    def test_values(self):
        cond = np.array([True, False])
        out = where(cond, Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        assert np.allclose(out.data, [1.0, 2.0])

    def test_grad_routing(self):
        cond = np.array([True, False, True])
        a, b = leaf(3), leaf(3)
        gradcheck(lambda x, y: (where(cond, x, y) ** 2).sum(), [a, b])


class TestEmbedding:
    def test_lookup_shape(self):
        weight = leaf(10, 4)
        idx = np.array([[1, 2], [3, 4]])
        assert embedding(weight, idx).shape == (2, 2, 4)

    def test_grad_scatter_accumulates(self):
        weight = Tensor(np.zeros((5, 2)), requires_grad=True)
        idx = np.array([1, 1, 3])
        embedding(weight, idx).sum().backward()
        expected = np.zeros((5, 2))
        expected[1] = 2.0
        expected[3] = 1.0
        assert np.allclose(weight.grad, expected)

    def test_gradcheck(self):
        weight = leaf(6, 3)
        idx = np.array([0, 2, 2, 5])
        gradcheck(lambda w: (embedding(w, idx) ** 2).sum(), [weight])

    def test_rejects_float_indices(self):
        with pytest.raises(TypeError):
            embedding(leaf(4, 2), np.array([0.5]))


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(leaf(5, 7)).data
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_grad(self):
        x = leaf(3, 4)
        gradcheck(lambda t: (softmax(t) ** 2).sum(), [x])

    def test_shift_invariance(self):
        x = RNG.normal(size=(2, 5))
        assert np.allclose(softmax(Tensor(x)).data,
                           softmax(Tensor(x + 100.0)).data)

    def test_log_softmax_matches_log_of_softmax(self):
        x = leaf(4, 6)
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_log_softmax_grad(self):
        x = leaf(2, 5)
        gradcheck(lambda t: (log_softmax(t) * log_softmax(t)).sum(), [x])


class TestMaskedSoftmax:
    def test_masked_positions_zero(self):
        mask = np.array([[True, False, True]])
        out = masked_softmax(leaf(1, 3), mask).data
        assert out[0, 1] == 0.0
        assert np.allclose(out.sum(), 1.0)

    def test_fully_masked_row_is_zero_not_nan(self):
        mask = np.zeros((2, 3), dtype=bool)
        out = masked_softmax(leaf(2, 3), mask).data
        assert np.all(out == 0.0)

    def test_grad_with_partial_mask(self):
        mask = np.array([[True, True, False, True]])
        x = leaf(1, 4)
        gradcheck(lambda t: (masked_softmax(t, mask) ** 2).sum(), [x])

    def test_matches_softmax_when_all_allowed(self):
        x = leaf(3, 5)
        mask = np.ones((3, 5), dtype=bool)
        assert np.allclose(masked_softmax(x, mask).data, softmax(x).data)


class TestDropout:
    def test_eval_mode_identity(self):
        x = leaf(10, 10)
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_zero_rate_identity(self):
        x = leaf(4)
        assert dropout(x, 0.0, np.random.default_rng(0)) is x

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, np.random.default_rng(0)).data
        assert abs(out.mean() - 1.0) < 0.02

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            dropout(leaf(3), 1.5, np.random.default_rng(0))

    def test_grad_masks_match_forward(self):
        x = leaf(50)
        out = dropout(x, 0.5, np.random.default_rng(3))
        out.sum().backward()
        dropped = out.data == 0.0
        assert np.all(x.grad[dropped] == 0.0)
        assert np.all(x.grad[~dropped] == 2.0)


class TestBinaryCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        probs = Tensor([0.9999999, 0.0000001])
        loss = binary_cross_entropy(probs, np.array([1.0, 0.0]))
        assert loss.item() < 1e-5

    def test_value_matches_formula(self):
        p = np.array([0.8, 0.3])
        y = np.array([1.0, 0.0])
        expected = -(np.log(0.8) + np.log(0.7)) / 2
        loss = binary_cross_entropy(Tensor(p), y)
        assert np.isclose(loss.item(), expected)

    def test_weights_exclude_padding(self):
        p = Tensor([0.8, 0.5])
        y = np.array([1.0, 1.0])
        w = np.array([1.0, 0.0])
        loss = binary_cross_entropy(p, y, weights=w)
        assert np.isclose(loss.item(), -np.log(0.8))

    def test_grad(self):
        x = leaf(6)
        y = (RNG.random(6) > 0.5).astype(float)
        gradcheck(lambda t: binary_cross_entropy(t.sigmoid(), y), [x])
