"""Autograd graph mechanics: accumulation, reuse, no_grad, errors."""

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad, unbroadcast


class TestBackward:
    def test_reused_tensor_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 5
        y.sum().backward()
        assert np.allclose(x.grad, [5.0])

    def test_diamond_graph(self):
        x = Tensor([3.0], requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a + b).sum().backward()
        assert np.allclose(x.grad, [5.0])

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.1
        y.sum().backward()
        assert np.allclose(x.grad, [1.1 ** 50])

    def test_backward_non_scalar_requires_grad_argument(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()
        y.backward(np.array([1.0, 1.0]))
        assert np.allclose(x.grad, [2.0, 2.0])

    def test_backward_on_constant_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_repeated_backward_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        assert np.allclose(x.grad, [4.0])

    def test_zero_grad_resets(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None


class TestNoGrad:
    def test_flag_toggles(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_graph_recorded(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_nested(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()

    def test_restored_on_exception(self):
        try:
            with no_grad():
                raise ValueError
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3.0).detach() * 2.0
        assert not y.requires_grad
        assert np.allclose(y.data, [12.0])


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert unbroadcast(g, (3, 4)) is g

    def test_prepended_axes_summed(self):
        g = np.ones((5, 3, 4))
        assert unbroadcast(g, (3, 4)).shape == (3, 4)
        assert np.all(unbroadcast(g, (3, 4)) == 5.0)

    def test_stretched_axes_summed(self):
        g = np.ones((3, 4))
        out = unbroadcast(g, (3, 1))
        assert out.shape == (3, 1)
        assert np.all(out == 4.0)

    def test_combined(self):
        g = np.ones((2, 3, 4))
        out = unbroadcast(g, (1, 4))
        assert out.shape == (1, 4)
        assert np.all(out == 6.0)
