"""Gradient and semantics checks for Tensor method operators."""

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.utils import gradcheck

RNG = np.random.default_rng(1234)


def leaf(*shape, scale=1.0, offset=0.0):
    return Tensor(RNG.normal(size=shape) * scale + offset, requires_grad=True)


class TestArithmetic:
    def test_add_values(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])

    def test_add_grad(self):
        a, b = leaf(3, 4), leaf(3, 4)
        gradcheck(lambda x, y: (x + y).sum(), [a, b])

    def test_add_broadcast_grad(self):
        a, b = leaf(3, 4), leaf(4)
        gradcheck(lambda x, y: (x + y).sum(), [a, b])

    def test_add_scalar(self):
        a = leaf(2, 2)
        gradcheck(lambda x: (x + 2.5).sum(), [a])

    def test_sub_grad(self):
        a, b = leaf(2, 5), leaf(2, 5)
        gradcheck(lambda x, y: (x - y).sum(), [a, b])

    def test_rsub(self):
        a = leaf(3)
        assert np.allclose((1.0 - a).data, 1.0 - a.data)

    def test_mul_grad(self):
        a, b = leaf(4, 3), leaf(4, 3)
        gradcheck(lambda x, y: (x * y).sum(), [a, b])

    def test_mul_broadcast_both_sides(self):
        a, b = leaf(1, 3), leaf(4, 1)
        gradcheck(lambda x, y: (x * y).sum(), [a, b])

    def test_div_grad(self):
        a, b = leaf(3, 3), leaf(3, 3, offset=3.0)
        gradcheck(lambda x, y: (x / y).sum(), [a, b])

    def test_pow_grad(self):
        a = leaf(4, offset=2.0)
        gradcheck(lambda x: (x ** 3).sum(), [a])

    def test_neg_grad(self):
        a = leaf(5)
        gradcheck(lambda x: (-x).sum(), [a])


class TestElementwise:
    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu", "abs"])
    def test_unary_grad(self, name):
        a = leaf(3, 4, offset=0.1)
        gradcheck(lambda x: getattr(x, name)().sum(), [a])

    def test_log_grad(self):
        a = leaf(3, 3, scale=0.1, offset=2.0)
        gradcheck(lambda x: x.log().sum(), [a])

    def test_sqrt_grad(self):
        a = leaf(3, 3, scale=0.1, offset=2.0)
        gradcheck(lambda x: x.sqrt().sum(), [a])

    def test_sigmoid_extreme_values_stable(self):
        a = Tensor([-1000.0, 0.0, 1000.0])
        out = a.sigmoid().data
        assert np.all(np.isfinite(out))
        assert out[0] < 1e-6 and abs(out[1] - 0.5) < 1e-12 and out[2] > 1 - 1e-6

    def test_clip_grad_zero_outside(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_maximum_grad_routing(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        a.maximum(b).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])

    def test_minimum_values(self):
        a, b = Tensor([1.0, 5.0]), Tensor([2.0, 3.0])
        assert np.allclose(a.minimum(b).data, [1.0, 3.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = leaf(2, 3, 4)
        assert a.sum(axis=1).shape == (2, 4)
        assert a.sum(axis=1, keepdims=True).shape == (2, 1, 4)

    def test_sum_grad(self):
        a = leaf(2, 3)
        gradcheck(lambda x: (x.sum(axis=0) ** 2).sum(), [a])

    def test_mean_grad(self):
        a = leaf(3, 4)
        gradcheck(lambda x: (x.mean(axis=1) ** 2).sum(), [a])

    def test_mean_value(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert np.allclose(a.mean().item(), 2.5)

    def test_max_grad_unique(self):
        a = Tensor(np.array([[1.0, 3.0], [2.0, 0.5]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_grad_ties_split(self):
        a = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.5, 0.5]])


class TestMatmul:
    def test_2d_grad(self):
        a, b = leaf(3, 4), leaf(4, 5)
        gradcheck(lambda x, y: (x @ y).sum(), [a, b])

    def test_batched_grad(self):
        a, b = leaf(2, 3, 4), leaf(2, 4, 5)
        gradcheck(lambda x, y: (x @ y).sum(), [a, b])

    def test_broadcast_batch_grad(self):
        a, b = leaf(2, 6, 3, 4), leaf(4, 5)
        gradcheck(lambda x, y: (x @ y).sum(), [a, b])

    def test_values(self):
        a = Tensor(np.eye(3))
        b = Tensor(np.arange(9.0).reshape(3, 3))
        assert np.allclose((a @ b).data, b.data)


class TestShapes:
    def test_reshape_grad(self):
        a = leaf(2, 6)
        gradcheck(lambda x: (x.reshape(3, 4) ** 2).sum(), [a])

    def test_transpose_grad(self):
        a = leaf(2, 3, 4)
        gradcheck(lambda x: (x.transpose(2, 0, 1) ** 2).sum(), [a])

    def test_swapaxes_roundtrip(self):
        a = leaf(2, 3, 4)
        assert a.swapaxes(1, 2).shape == (2, 4, 3)

    def test_getitem_slice_grad(self):
        a = leaf(4, 5)
        gradcheck(lambda x: (x[1:3, ::2] ** 2).sum(), [a])

    def test_getitem_integer_array_accumulates(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        idx = np.array([0, 0, 2])
        a[idx].sum().backward()
        assert np.allclose(a.grad, [[2.0, 2.0], [0.0, 0.0], [1.0, 1.0]])

    def test_expand_squeeze(self):
        a = leaf(3, 4)
        assert a.expand_dims(1).shape == (3, 1, 4)
        assert a.expand_dims(1).squeeze(1).shape == (3, 4)
