"""Hypothesis property tests for the autodiff substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.tensor import Tensor, softmax, unbroadcast
from repro.utils import gradcheck

finite_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
    elements=st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False),
)


@settings(max_examples=30, deadline=None)
@given(finite_arrays)
def test_softmax_is_distribution(x):
    out = softmax(Tensor(x)).data
    assert np.all(out >= 0.0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@settings(max_examples=30, deadline=None)
@given(finite_arrays)
def test_exp_log_roundtrip(x):
    t = Tensor(x)
    assert np.allclose(t.exp().log().data, x, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(finite_arrays)
def test_tanh_bounded(x):
    out = Tensor(x).tanh().data
    assert np.all(np.abs(out) <= 1.0)


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=3),
              elements=st.floats(-3.0, 3.0)))
def test_mul_gradcheck_random_shapes(x):
    a = Tensor(x.copy(), requires_grad=True)
    b = Tensor(x.copy() + 0.5, requires_grad=True)
    gradcheck(lambda u, v: (u * v).sum(), [a, b])


@settings(max_examples=30, deadline=None)
@given(finite_arrays)
def test_unbroadcast_restores_shape_after_broadcast(x):
    target_shape = x.shape
    broadcast = np.broadcast_to(x, (2,) + target_shape)
    reduced = unbroadcast(np.asarray(broadcast, dtype=np.float64), target_shape)
    assert reduced.shape == target_shape
    assert np.allclose(reduced, 2.0 * x)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4))
def test_matmul_grad_matches_transpose_rule(n, m):
    rng = np.random.default_rng(n * 10 + m)
    a = Tensor(rng.normal(size=(n, m)), requires_grad=True)
    b = Tensor(rng.normal(size=(m, n)), requires_grad=True)
    (a @ b).sum().backward()
    # d(sum(AB))/dA = ones @ B^T
    expected = np.ones((n, n)) @ b.data.T
    assert np.allclose(a.grad, expected)


@settings(max_examples=20, deadline=None)
@given(finite_arrays)
def test_sigmoid_symmetry(x):
    t = Tensor(x)
    left = t.sigmoid().data
    right = 1.0 - Tensor(-x).sigmoid().data
    assert np.allclose(left, right, atol=1e-12)
