"""Experiment harness structure tests at micro scale.

These do NOT validate paper shapes (that is the benchmarks' job); they
verify the harness plumbing — caching, registries, result containers,
renderers — with the smallest budgets that still execute every code path.
"""

import pytest

from repro.experiments import (ABLATIONS, BASELINES, Budget, DATASETS,
                               RCKT_VARIANTS, TABLE4, cached_dataset,
                               run_ablation, run_baseline,
                               run_cross_validation, run_lambda_sweep,
                               run_overall, run_rckt, run_table2,
                               single_fold)

MICRO = Budget(dim=8, epochs=1, batch_size=16, eval_stride=4)


@pytest.fixture(scope="module")
def micro_fold():
    dataset = cached_dataset("assist09", scale=0.1, seed=0)
    return dataset, single_fold(dataset)


class TestCommon:
    def test_dataset_cache_returns_same_object(self):
        a = cached_dataset("assist09", scale=0.1, seed=0)
        b = cached_dataset("assist09", scale=0.1, seed=0)
        assert a is b

    def test_registries_cover_paper(self):
        assert set(DATASETS) == {"assist09", "assist12", "slepemapy", "eedi"}
        assert set(BASELINES) == {"DKT", "SAKT", "AKT", "DIMKT", "IKT", "QIKT"}
        assert set(RCKT_VARIANTS) == {"RCKT-DKT", "RCKT-SAKT", "RCKT-AKT"}
        assert set(TABLE4) == set(BASELINES) | set(RCKT_VARIANTS)

    def test_unknown_baseline_raises(self, micro_fold):
        _, fold = micro_fold
        with pytest.raises(KeyError):
            run_baseline("GPT", fold, MICRO)

    def test_run_baseline_returns_metrics(self, micro_fold):
        _, fold = micro_fold
        metrics = run_baseline("DKT", fold, MICRO)
        assert set(metrics) == {"auc", "acc"}

    def test_run_rckt_returns_metrics(self, micro_fold):
        _, fold = micro_fold
        metrics = run_rckt("assist09", "dkt", fold, MICRO)
        assert 0.0 <= metrics["auc"] <= 1.0

    def test_baseline_seeding_is_deterministic(self, micro_fold):
        _, fold = micro_fold
        a = run_baseline("DKT", fold, MICRO)
        b = run_baseline("DKT", fold, MICRO)
        assert a == b


class TestResultContainers:
    def test_table2_renders(self):
        result = run_table2(datasets=("assist09",))
        text = result.render()
        assert "assist09" in text and "paper" in text

    def test_overall_micro(self):
        result = run_overall(models=["DKT", "RCKT-DKT"],
                             datasets=["assist09"], budget=MICRO)
        assert result.best_baseline("assist09") > 0
        assert result.best_rckt("assist09") > 0
        assert "Table IV" in result.render()

    def test_ablation_micro(self):
        result = run_ablation(encoders=("dkt",), datasets=("assist09",),
                              variants=("full", "-mono"), budget=MICRO)
        assert set(result.metrics) == {"full", "-mono"}
        delta = result.degradation("-mono", "dkt", "assist09")
        assert isinstance(delta, float)
        assert "Table V" in result.render()

    def test_ablation_registry(self):
        assert set(ABLATIONS) == {"full", "-joint", "-mono", "-con"}
        assert ABLATIONS["-mono"] == {"use_monotonicity": False}

    def test_lambda_sweep_micro(self):
        result = run_lambda_sweep(encoders=("dkt",), datasets=("assist09",),
                                  lambdas=(0.0, 0.1), budget=MICRO)
        curve = result.curves[("dkt", "assist09")]
        assert set(curve) == {0.0, 0.1}
        assert result.best_lambda("dkt", "assist09") in (0.0, 0.1)

    def test_cross_validation_micro(self):
        # eval_stride=1 so every fold's small test set keeps both classes.
        budget = Budget(dim=8, epochs=1, batch_size=16, eval_stride=1)
        dataset = cached_dataset("assist09", scale=0.15, seed=1)
        result = run_cross_validation(dataset, "assist09",
                                      models=["DKT"], k=3, budget=budget)
        assert len(result.per_fold["DKT"]) == 3
        assert 0.0 <= result.mean("DKT") <= 1.0
        assert result.std("DKT") >= 0.0
        assert "cross validation" in result.render()

    def test_cv_significance_requires_pairs(self):
        budget = Budget(dim=8, epochs=1, batch_size=16, eval_stride=1)
        dataset = cached_dataset("assist09", scale=0.15, seed=1)
        result = run_cross_validation(dataset, "assist09",
                                      models=["DKT", "RCKT-DKT"], k=3,
                                      budget=budget)
        p = result.significance("RCKT-DKT", "DKT")
        assert 0.0 <= p <= 1.0
