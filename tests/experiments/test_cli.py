"""CLI runner smoke tests (fast paths only)."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_all_experiments_listed(self):
        assert set(EXPERIMENTS) == {"table2", "table4", "table5", "table6",
                                    "fig4", "fig5", "fig6", "cv"}

    def test_parses_options(self):
        args = build_parser().parse_args(
            ["table4", "--models", "DKT", "--datasets", "assist09",
             "--epochs", "2"])
        assert args.models == ["DKT"]
        assert args.epochs == 2


class TestRun:
    def test_table2_prints(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert main(["table2", "--datasets", "assist09"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out and "assist09" in out

    def test_table4_micro(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        code = main(["table4", "--models", "IKT", "--datasets", "assist09",
                     "--epochs", "1"])
        assert code == 0
        assert "Table IV" in capsys.readouterr().out
