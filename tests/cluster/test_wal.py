"""WAL byte layer: frame roundtrips, torn tails, and segment recovery.

Everything here manipulates raw segment bytes — the failure injection
(`truncate mid-frame`, `flip a payload byte`, `forge a valid-CRC
non-JSON frame`) mirrors what a crash or disk fault leaves behind, and
the assertions pin the recovery contract the journal layer builds on:
every frame *before* the damage survives, everything at or after it is
reported (and truncated by :func:`repro.cluster.wal.recover_segment`).
"""

import struct
import zlib

import pytest

from repro.cluster import wal
from repro.cluster.wal import (HEADER_BYTES, SegmentWriter, encode_entry,
                               list_segments, recover_segment,
                               scan_entries, segment_index, segment_path)


def entries(n, student="s0"):
    return [{"sequence": k + 1,
             "payload": {"v": 1, "type": "record", "student_id": student,
                         "question_id": k + 1, "correct": k % 2,
                         "concept_ids": [1], "model": "default"}}
            for k in range(n)]


def write_segment(path, records, fsync="batch"):
    writer = SegmentWriter(path, fsync=fsync)
    for record in records:
        writer.append(record)
    writer.close()
    return path


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
def test_frame_roundtrip(tmp_path):
    records = entries(5)
    path = write_segment(tmp_path / "segment-00000001.wal", records)
    decoded, valid, damage = wal.read_segment(path)
    assert decoded == records
    assert valid == path.stat().st_size
    assert damage is None


def test_empty_segment_is_clean(tmp_path):
    path = tmp_path / "segment-00000001.wal"
    SegmentWriter(path).close()
    assert wal.read_segment(path) == ([], 0, None)


def test_scan_reports_torn_header():
    data = b"".join(encode_entry(e) for e in entries(3))
    torn = data[:len(data) - len(encode_entry(entries(3)[-1])) + 3]
    decoded, valid, damage = scan_entries(torn)
    assert decoded == entries(2)
    assert damage == "torn header"
    assert torn[:valid] == b"".join(encode_entry(e) for e in entries(2))


def test_scan_reports_torn_payload():
    frames = [encode_entry(e) for e in entries(2)]
    torn = frames[0] + frames[1][:HEADER_BYTES + 4]
    decoded, valid, damage = scan_entries(torn)
    assert decoded == entries(1)
    assert valid == len(frames[0])
    assert damage == "torn payload"


def test_scan_reports_crc_mismatch():
    frames = [encode_entry(e) for e in entries(2)]
    corrupt = bytearray(frames[0] + frames[1])
    corrupt[len(frames[0]) + HEADER_BYTES] ^= 0xFF   # flip a payload byte
    decoded, valid, damage = scan_entries(bytes(corrupt))
    assert decoded == entries(1)
    assert valid == len(frames[0])
    assert damage == "crc mismatch"


def test_scan_reports_undecodable_payload():
    # A frame whose CRC verifies but whose payload is not JSON: only a
    # bug (or deliberate tampering) produces this, and it must not pass.
    payload = b"\xffnot json"
    frame = struct.Struct("<II").pack(len(payload),
                                      zlib.crc32(payload)) + payload
    decoded, valid, damage = scan_entries(encode_entry(entries(1)[0])
                                          + frame)
    assert decoded == entries(1)
    assert damage == "undecodable payload"


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------
def test_recover_segment_truncates_torn_tail(tmp_path):
    records = entries(4)
    path = write_segment(tmp_path / "segment-00000001.wal", records)
    clean_size = path.stat().st_size
    with open(path, "ab") as handle:
        handle.write(encode_entry(records[0])[:HEADER_BYTES + 2])
    recovered, dropped = recover_segment(path)
    assert recovered == records
    assert dropped == HEADER_BYTES + 2
    assert path.stat().st_size == clean_size
    # Idempotent: a second recovery finds nothing to drop.
    assert recover_segment(path) == (records, 0)


def test_recover_segment_drops_flipped_final_record(tmp_path):
    records = entries(3)
    path = write_segment(tmp_path / "segment-00000001.wal", records)
    data = bytearray(path.read_bytes())
    data[-1] ^= 0x01
    path.write_bytes(bytes(data))
    recovered, dropped = recover_segment(path)
    assert recovered == records[:2]   # damage costs only the last frame
    assert dropped == len(encode_entry(records[2]))


# ---------------------------------------------------------------------------
# Writer + naming
# ---------------------------------------------------------------------------
def test_writer_tracks_size_and_reopens(tmp_path):
    path = tmp_path / "segment-00000001.wal"
    writer = SegmentWriter(path)
    first = writer.append(entries(1)[0])
    assert writer.size == first == path.stat().st_size
    writer.close()
    # Reopening an existing segment resumes from its on-disk size.
    writer = SegmentWriter(path)
    assert writer.size == first
    writer.append(entries(2)[1])
    writer.close()
    decoded, _, damage = wal.read_segment(path)
    assert decoded == entries(2) and damage is None


def test_writer_rejects_unknown_fsync_policy(tmp_path):
    with pytest.raises(ValueError, match="fsync policy"):
        SegmentWriter(tmp_path / "segment-00000001.wal", fsync="always")


@pytest.mark.parametrize("fsync", wal.FSYNC_POLICIES)
def test_every_fsync_policy_persists(tmp_path, fsync):
    records = entries(3)
    path = write_segment(tmp_path / "segment-00000001.wal", records,
                         fsync=fsync)
    assert wal.read_segment(path) == (records, path.stat().st_size, None)


def test_segment_naming_and_listing(tmp_path):
    for index in (3, 1, 2):
        write_segment(segment_path(tmp_path, index), entries(1))
    (tmp_path / "notes.txt").write_text("not a segment")
    listed = list_segments(tmp_path)
    assert [segment_index(p) for p in listed] == [1, 2, 3]
    with pytest.raises(ValueError):
        segment_index(tmp_path / "notes.txt")
    assert list_segments(tmp_path / "missing") == []
