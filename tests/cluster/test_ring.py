"""Consistent-hash ring: determinism, balance, resize stability."""

import pytest

from repro.cluster import HashRing, student_key


class TestDeterminism:
    def test_identical_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        for key in range(500):
            assert a.shard_for(f"student-{key}") \
                == b.shard_for(f"student-{key}")

    def test_int_and_str_ids_are_distinct_students(self):
        # The history store treats 7 and "7" as different students; the
        # ring must not silently merge them onto one key.
        assert student_key(7) != student_key("7")

    def test_known_key_types_hash_stably(self):
        ring = HashRing(3)
        for student in ("amy", 42, 3.5, True, None, ("a", 1)):
            assert 0 <= ring.shard_for(student) < 3
            assert ring.shard_for(student) == ring.shard_for(student)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="shards"):
            HashRing(0)
        with pytest.raises(ValueError, match="replicas"):
            HashRing(2, replicas=0)


class TestPlacement:
    def test_partition_matches_shard_for(self):
        ring = HashRing(4)
        students = [f"s{k}" for k in range(200)]
        groups = ring.partition(students)
        assert sorted(i for group in groups for i in group) \
            == list(range(200))
        for shard, group in enumerate(groups):
            for index in group:
                assert ring.shard_for(students[index]) == shard

    def test_balance_is_reasonable(self):
        # With default replicas the max/mean shard load over a large
        # random key set stays within a loose constant factor — enough
        # to rule out degenerate all-on-one-shard placements without
        # flaking on hash luck.
        ring = HashRing(4)
        counts = [len(g) for g in
                  ring.partition([f"student-{k}" for k in range(8000)])]
        assert min(counts) > 0
        assert max(counts) < 2.5 * (sum(counts) / len(counts))


class TestResizeStability:
    def test_growth_only_moves_keys_to_the_new_shard(self):
        before, after = HashRing(4), HashRing(5)
        students = [f"student-{k}" for k in range(4000)]
        moved = 0
        for student in students:
            old, new = before.shard_for(student), after.shard_for(student)
            if old != new:
                moved += 1
                # Consistent hashing: existing shards' ring points are
                # unchanged, so any key that moves must move to the
                # shard that was added — never between old shards.
                assert new == 4
        # Expected move fraction is 1/5; allow generous slack.
        assert 0.05 < moved / len(students) < 0.40
