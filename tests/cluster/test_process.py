"""Real multi-process cluster: supervisor-spawned workers end to end.

One deliberately compact test drives the whole OS-process stack (the
thread-backed suite in ``test_router.py`` covers the routing logic
breadth; ``python -m repro.cluster --selfcheck`` is the CI smoke lane
that additionally exercises rollout + post-rollout crash recovery).
"""

import numpy as np
import pytest

from repro.core import RCKT, RCKTConfig
from repro.cluster import (RecordJournal, ScatterGatherRouter, Supervisor,
                           WorkerSpec, free_port)
from repro.serve import (DEFAULT_MODEL, ExplainQuery, InferenceEngine,
                         RecordEvent, ScoreQuery, Service, to_wire)

NUM_QUESTIONS = 20
NUM_CONCEPTS = 5


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster") / "model.npz"
    engine = InferenceEngine(RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                                  RCKTConfig(encoder="dkt", dim=8,
                                             layers=1, seed=2)))
    engine.save(path)
    return path


def test_two_process_cluster_round_trip_and_crash_recovery(checkpoint,
                                                           tmp_path):
    specs = [WorkerSpec(shard_id=shard, port=free_port(),
                        checkpoints=[(DEFAULT_MODEL, str(checkpoint))],
                        log_path=str(tmp_path / f"worker{shard}.log"))
             for shard in range(2)]
    journal = RecordJournal()
    supervisor = Supervisor(specs, journal=journal, boot_timeout=60.0)
    supervisor.start()
    router = ScatterGatherRouter([spec.base_url for spec in specs],
                                 timeout=10.0, journal=journal)
    supervisor.attach_router(router)
    reference = Service.from_checkpoint(checkpoint)
    try:
        rng = np.random.default_rng(3)
        students = [f"proc-{k}" for k in range(6)]
        records = [RecordEvent(s, int(rng.integers(1, NUM_QUESTIONS + 1)),
                               int(rng.integers(0, 2)),
                               (int(rng.integers(1, NUM_CONCEPTS + 1)),))
                   for _ in range(3) for s in students]
        mixed = [q for s in students
                 for q in (ScoreQuery(s, 7, (2,)), ExplainQuery(s))]

        for batch in (records, mixed):
            ours = router.execute_batch(batch)
            theirs = reference.execute_batch(batch)
            assert [to_wire(a) for a in ours] \
                == [to_wire(b) for b in theirs]

        # Hard-kill one worker: the watchdog round must respawn it on
        # the same port and replay its journal, restoring bit-identity.
        supervisor.workers[0].process.kill()
        supervisor.workers[0].process.wait()
        supervisor.check_once()
        assert supervisor.workers[0].restarts == 1
        ours = router.execute_batch(mixed)
        theirs = reference.execute_batch(mixed)
        assert [to_wire(a) for a in ours] == [to_wire(b) for b in theirs]
        assert router.health()["status"] == "ok"
    finally:
        supervisor.stop()
        router.close()
        reference.close()
