"""Durable RecordJournal: validation, cross-boundary ordering, recovery.

The regression sweep for the journal-correctness bugfixes:

* **Append validation** — a payload that would not replay as a
  ``RecordEvent`` (most notably one *missing* ``student_id``, which the
  old journal silently keyed under ``student_key(None)`` and replayed
  as a poison record) is rejected with a ``MalformedQuery`` value and
  never journaled.  A payload whose ``student_id`` field is present but
  ``None`` stays journalable — the single-process ``Service`` accepts
  such records, and the journal must mirror what workers acknowledged.
* **Ordering + dedup across storage boundaries** — a retried ack
  journaled twice lands in two different segment files, or once in a
  snapshot and once in the tail; replay keeps exactly one copy and
  worker-acknowledged per-student order either way.
* **Torn tails** — byte-level damage to the final segment truncates to
  the last good frame on cold boot; the same damage in a sealed
  segment refuses to boot (``SegmentCorruption``).
"""

import pytest

from repro.cluster import snapshot as snapshot_io
from repro.cluster import wal
from repro.cluster.journal import (RecordJournal, replay_order,
                                   validate_entry)
from repro.cluster.wal import SegmentCorruption
from repro.serve import MalformedQuery, RecordEvent, to_wire


def payload(student, question=1, correct=1):
    return to_wire(RecordEvent(student, question, correct, (1,)))


def replayed(journal, shard=0):
    return [query for envelope in journal.envelopes(shard)
            for query in envelope["queries"]]


def shard_dir(tmp_path, shard=0):
    return tmp_path / f"shard-{shard:04d}"


# ---------------------------------------------------------------------------
# Satellite 1: append validation (the poison-record regression)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("durable", [False, True])
def test_append_rejects_payload_missing_student_id(tmp_path, durable):
    journal = RecordJournal(directory=tmp_path if durable else None)
    poison = payload("s0")
    del poison["student_id"]
    error = journal.append(0, poison, sequence=1)
    assert isinstance(error, MalformedQuery)
    assert "would not replay" in error.message
    assert journal.count(0) == 0 and replayed(journal) == []
    if durable:
        journal.close()
        # Nothing poisonous on disk either: cold boot stays empty.
        assert RecordJournal(directory=tmp_path).total() == 0


@pytest.mark.parametrize("bad, match", [
    ("not a dict", "wire object"),
    (42, "wire object"),
    ({"v": 1, "type": "score", "student_id": "s0", "question_id": 1,
      "concept_ids": [1]}, "must be 'record'"),
    ({"v": 1, "type": "nonsense"}, "would not replay"),
])
def test_append_rejects_unreplayable_payloads(bad, match):
    journal = RecordJournal()
    error = journal.append(0, bad, sequence=1)
    assert isinstance(error, MalformedQuery)
    assert match in error.message
    assert journal.count(0) == 0


@pytest.mark.parametrize("sequence", ["nope", None, 0, -3])
def test_append_rejects_bad_sequences(sequence):
    journal = RecordJournal()
    error = journal.append(0, payload("s0"), sequence=sequence)
    assert isinstance(error, MalformedQuery)
    assert "sequence" in error.message
    assert journal.count(0) == 0


def test_append_accepts_null_student_id_field(tmp_path):
    # Present-but-None is a valid student to the Service, so it must be
    # a valid journal entry too (rejecting it would drop acknowledged
    # state on replay and break the bit-identity contract).
    journal = RecordJournal(directory=tmp_path)
    assert journal.append(0, payload(None), sequence=1) is None
    journal.close()
    reopened = RecordJournal(directory=tmp_path)
    assert [q["student_id"] for q in replayed(reopened)] == [None]


def test_validate_entry_names_the_defect():
    missing = payload("s0")
    del missing["student_id"]
    assert "would not replay" in validate_entry(missing, 1).message
    assert validate_entry(payload("s0"), 1) is None


# ---------------------------------------------------------------------------
# Satellite 2: dedup + ordering across segment and snapshot boundaries
# ---------------------------------------------------------------------------
def test_retried_ack_deduped_across_two_segments(tmp_path):
    # segment_max_bytes=1 rolls after every append: the retried ack's
    # two copies are guaranteed to land in different segment files.
    journal = RecordJournal(directory=tmp_path, segment_max_bytes=1)
    assert journal.append(0, payload("s0", question=1), sequence=1) is None
    assert journal.append(0, payload("s0", question=2), sequence=2) is None
    assert journal.append(0, payload("s0", question=1), sequence=1) is None
    assert len(wal.list_segments(shard_dir(tmp_path))) == 3
    assert [q["question_id"] for q in replayed(journal)] == [1, 2]
    journal.close()
    reopened = RecordJournal(directory=tmp_path)
    assert [q["question_id"] for q in replayed(reopened)] == [1, 2]


def test_late_low_sequence_ack_reorders_across_segments(tmp_path):
    journal = RecordJournal(directory=tmp_path, segment_max_bytes=1)
    journal.append(0, payload("s0", question=20), sequence=2)
    journal.append(0, payload("s1", question=30), sequence=1)
    journal.append(0, payload("s0", question=10), sequence=1)   # late ack
    journal.close()
    reopened = RecordJournal(directory=tmp_path)
    # Students keep first-appearance order; within s0 the late
    # low-sequence ack replays first despite being journaled last (and
    # in a later segment file).
    assert [(q["student_id"], q["question_id"])
            for q in replayed(reopened)] == \
        [("s0", 10), ("s0", 20), ("s1", 30)]


def test_snapshot_tail_seam_dedups_and_reorders(tmp_path):
    journal = RecordJournal(directory=tmp_path)
    journal.append(0, payload("s0", question=10), sequence=1)
    journal.append(0, payload("s0", question=30), sequence=3)
    journal.snapshot(0)
    # Post-snapshot tail: a retried copy of a snapshotted ack plus a
    # late-arriving lower-sequence ack.
    journal.append(0, payload("s0", question=30), sequence=3)
    journal.append(0, payload("s0", question=20), sequence=2)
    journal.sync(0)
    expected = [10, 20, 30]
    assert [q["question_id"] for q in replayed(journal)] == expected
    journal.close()
    reopened = RecordJournal(directory=tmp_path)
    assert [q["question_id"] for q in replayed(reopened)] == expected


def test_replay_order_is_shared_and_stable():
    entries = [(b"a", 2, {"q": "a2"}), (b"b", 1, {"q": "b1"}),
               (b"a", 1, {"q": "a1"}), (b"a", 2, {"q": "dup"})]
    assert [p["q"] for _, _, p in replay_order(entries)] == \
        ["a1", "a2", "b1"]


# ---------------------------------------------------------------------------
# Satellite 3: torn tails and sealed-segment corruption
# ---------------------------------------------------------------------------
def test_cold_boot_truncates_torn_tail(tmp_path):
    journal = RecordJournal(directory=tmp_path)
    for k in range(3):
        journal.append(0, payload(f"s{k}", question=1 + k),
                       sequence=1)
    journal.sync(0)
    journal.close()
    segment = wal.list_segments(shard_dir(tmp_path))[-1]
    clean = segment.stat().st_size
    with open(segment, "ab") as handle:
        handle.write(b"\x40\x00\x00\x00torn")   # partial final frame
    reopened = RecordJournal(directory=tmp_path)
    assert reopened.count(0) == 3
    assert segment.stat().st_size == clean
    assert reopened.describe()["shards"]["0"]["truncated_bytes"] == 8
    reopened.close()
    # The truncation is durable: a second boot finds a clean tail.
    third = RecordJournal(directory=tmp_path)
    assert third.count(0) == 3
    assert third.describe()["shards"]["0"]["truncated_bytes"] == 0


def test_flipped_tail_byte_drops_only_last_record(tmp_path):
    journal = RecordJournal(directory=tmp_path)
    for k in range(3):
        journal.append(0, payload("s0", question=1 + k), sequence=1 + k)
    journal.sync(0)
    journal.close()
    segment = wal.list_segments(shard_dir(tmp_path))[-1]
    data = bytearray(segment.read_bytes())
    data[-1] ^= 0x01
    segment.write_bytes(bytes(data))
    reopened = RecordJournal(directory=tmp_path)
    assert [q["question_id"] for q in replayed(reopened)] == [1, 2]


def test_sealed_segment_corruption_refuses_to_boot(tmp_path):
    journal = RecordJournal(directory=tmp_path, segment_max_bytes=1)
    journal.append(0, payload("s0", question=1), sequence=1)
    journal.append(0, payload("s0", question=2), sequence=2)
    journal.close()
    sealed, _ = wal.list_segments(shard_dir(tmp_path))
    data = bytearray(sealed.read_bytes())
    data[-1] ^= 0x01
    sealed.write_bytes(bytes(data))
    with pytest.raises(SegmentCorruption):
        RecordJournal(directory=tmp_path)


def test_append_resumes_cleanly_after_torn_boot(tmp_path):
    journal = RecordJournal(directory=tmp_path)
    journal.append(0, payload("s0", question=1), sequence=1)
    journal.sync(0)
    journal.close()
    segment = wal.list_segments(shard_dir(tmp_path))[-1]
    with open(segment, "ab") as handle:
        handle.write(b"\x07")
    reopened = RecordJournal(directory=tmp_path)
    assert reopened.append(0, payload("s0", question=2),
                           sequence=2) is None
    reopened.sync(0)
    reopened.close()
    assert [q["question_id"]
            for q in replayed(RecordJournal(directory=tmp_path))] == [1, 2]


# ---------------------------------------------------------------------------
# Snapshot + truncation bounds disk usage
# ---------------------------------------------------------------------------
def test_auto_snapshot_bounds_segment_files(tmp_path):
    journal = RecordJournal(directory=tmp_path, segment_max_bytes=1,
                            snapshot_every=4)
    for k in range(10):
        assert journal.append(0, payload(f"s{k}", question=1 + k),
                              sequence=1) is None
    directory = shard_dir(tmp_path)
    # 10 appends at one segment per append would be 10 files; the two
    # auto-snapshots (at 4 and 8) truncated all but the unsealed tail.
    assert len(wal.list_segments(directory)) == 10 - 8
    assert len(snapshot_io.list_snapshots(directory)) == 1
    stats = journal.describe()["shards"]["0"]
    assert stats["snapshots_taken"] == 2
    assert stats["snapshot"] == 8 and stats["tail"] == 2
    assert len(replayed(journal)) == 10
    journal.close()
    assert len(replayed(RecordJournal(directory=tmp_path))) == 10


def test_explicit_snapshot_keeps_replay_identical(tmp_path):
    journal = RecordJournal(directory=tmp_path, segment_max_bytes=1)
    for k in range(5):
        journal.append(0, payload(f"s{k % 2}", question=1 + k),
                       sequence=1 + k // 2)
    before = replayed(journal)
    stats = journal.snapshot(0)
    assert stats["segments_removed"] == 5
    assert wal.list_segments(shard_dir(tmp_path)) == []
    assert replayed(journal) == before
    journal.close()
    assert replayed(RecordJournal(directory=tmp_path)) == before


def test_crash_between_snapshot_and_truncation_dedups(tmp_path):
    # The documented crash window: the snapshot is durable but the
    # segments it covers were not yet deleted.  Cold boot sees every
    # entry twice (snapshot + stale segment) and replay dedup drops
    # the copies.
    journal = RecordJournal(directory=tmp_path)
    for k in range(3):
        journal.append(0, payload("s0", question=1 + k), sequence=1 + k)
    journal.sync(0)
    journal.close()
    ordered = [(sequence, entry_payload) for _, sequence, entry_payload
               in replay_order(
                   [(b"s0", 1 + k, payload("s0", question=1 + k))
                    for k in range(3)])]
    snapshot_io.write_snapshot(shard_dir(tmp_path), 1, ordered)
    reopened = RecordJournal(directory=tmp_path)
    assert reopened.count(0) == 6   # raw: snapshot + stale segment
    assert [q["question_id"] for q in replayed(reopened)] == [1, 2, 3]


def test_corrupt_snapshot_falls_back_to_segments(tmp_path):
    journal = RecordJournal(directory=tmp_path)
    journal.append(0, payload("s0", question=7), sequence=1)
    journal.sync(0)
    journal.close()
    snapshot_io.write_snapshot(shard_dir(tmp_path), 1, [])
    path = snapshot_io.snapshot_path(shard_dir(tmp_path), 1)
    path.write_bytes(path.read_bytes()[:-5])   # truncate: CRC fails
    reopened = RecordJournal(directory=tmp_path)
    assert [q["question_id"] for q in replayed(reopened)] == [7]


# ---------------------------------------------------------------------------
# Durable plumbing
# ---------------------------------------------------------------------------
def test_bind_meta_pins_cluster_parameters(tmp_path):
    journal = RecordJournal(directory=tmp_path)
    journal.bind_meta({"shards": 2, "replicas": 64})
    journal.close()
    reopened = RecordJournal(directory=tmp_path)
    assert reopened.bind_meta({"shards": 2, "replicas": 64}) == \
        {"shards": 2, "replicas": 64}
    with pytest.raises(ValueError, match="different cluster parameters"):
        reopened.bind_meta({"shards": 4, "replicas": 64})


def test_constructor_validates_parameters(tmp_path):
    with pytest.raises(ValueError, match="fsync policy"):
        RecordJournal(directory=tmp_path, fsync="sometimes")
    with pytest.raises(ValueError, match="segment_max_bytes"):
        RecordJournal(directory=tmp_path, segment_max_bytes=0)
    with pytest.raises(ValueError, match="snapshot_every"):
        RecordJournal(directory=tmp_path, snapshot_every=-1)


@pytest.mark.parametrize("fsync", wal.FSYNC_POLICIES)
def test_every_fsync_policy_survives_reopen(tmp_path, fsync):
    journal = RecordJournal(directory=tmp_path, fsync=fsync)
    journal.append(0, payload("s0"), sequence=1)
    journal.sync(0)
    journal.close()
    assert RecordJournal(directory=tmp_path).count(0) == 1


def test_in_memory_journal_semantics_unchanged():
    journal = RecordJournal()
    assert not journal.durable and journal.directory is None
    journal.append(0, payload("s0", question=2), sequence=2)
    journal.append(0, payload("s0", question=1), sequence=1)
    journal.append(0, payload("s0", question=1), sequence=1)   # retry
    assert journal.count(0) == 3   # raw entries, like the old journal
    assert [q["question_id"] for q in replayed(journal)] == [1, 2]
    stats = journal.snapshot(0)   # in-memory compaction still works
    assert stats["entries"] == 2 and stats["segments_removed"] == 0
    assert journal.count(0) == 2
    assert [q["question_id"] for q in replayed(journal)] == [1, 2]
    journal.sync(0)   # no-op, must not raise
    journal.close()
