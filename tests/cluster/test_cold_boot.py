"""Cold boot: kill -9 the workers AND the router, recover from disk.

The durable-journal end-to-end: a real multi-process cluster journals
to ``--journal-dir``-style storage, every process is hard-killed
mid-stream (no drain, no ``close()`` — the unsealed tail is exactly
what the crash left), and a **brand-new** journal + supervisor +
router stack cold-boots from the directory alone.  The recovered
cluster must answer the next batches bit-identically to an
uninterrupted single-process ``Service`` — including the per-student
``history_length`` acks, which prove the replayed histories have
exactly the right number of records (no drops, no duplicates).
"""

import numpy as np
import pytest

from repro.core import RCKT, RCKTConfig
from repro.cluster import (RecordJournal, ScatterGatherRouter, Supervisor,
                           WorkerSpec, free_port)
from repro.serve import (DEFAULT_MODEL, ExplainQuery, InferenceEngine,
                         RecordEvent, ScoreQuery, Service, to_wire)

NUM_QUESTIONS = 20
NUM_CONCEPTS = 5


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    path = tmp_path_factory.mktemp("coldboot") / "model.npz"
    engine = InferenceEngine(RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                                  RCKTConfig(encoder="dkt", dim=8,
                                             layers=1, seed=4)))
    engine.save(path)
    return path


def make_specs(checkpoint, tmp_path, generation):
    return [WorkerSpec(shard_id=shard, port=free_port(),
                       checkpoints=[(DEFAULT_MODEL, str(checkpoint))],
                       log_path=str(tmp_path /
                                    f"gen{generation}-worker{shard}.log"))
            for shard in range(2)]


def assert_wire_identical(ours, theirs):
    assert [to_wire(a) for a in ours] == [to_wire(b) for b in theirs]


def test_cold_boot_recovers_replies_and_history_lengths(checkpoint,
                                                        tmp_path):
    journal_dir = tmp_path / "journal"
    reference = Service.from_checkpoint(checkpoint)
    rng = np.random.default_rng(11)
    students = [f"boot-{k}" for k in range(6)]

    def make_round():
        return [RecordEvent(s, int(rng.integers(1, NUM_QUESTIONS + 1)),
                            int(rng.integers(0, 2)),
                            (int(rng.integers(1, NUM_CONCEPTS + 1)),))
                for s in students]

    batch_a = [event for _ in range(3) for event in make_round()]
    batch_b = [event for _ in range(2) for event in make_round()]
    mixed = [q for s in students
             for q in (ScoreQuery(s, 7, (2,)), ExplainQuery(s))]

    # --- generation 1: journal to disk, then die hard mid-stream -----
    specs = make_specs(checkpoint, tmp_path, 1)
    journal = RecordJournal(directory=journal_dir, fsync="batch")
    supervisor = Supervisor(specs, journal=journal, boot_timeout=60.0)
    supervisor.start()
    router = ScatterGatherRouter([spec.base_url for spec in specs],
                                 timeout=10.0, journal=journal)
    supervisor.attach_router(router)
    try:
        half = len(batch_a) // 2
        assert_wire_identical(router.execute_batch(batch_a[:half]),
                              reference.execute_batch(batch_a[:half]))

        # kill -9 one worker mid-stream: the watchdog restart replays
        # from the on-disk journal (not a carried-over memory list).
        supervisor.workers[0].process.kill()
        supervisor.workers[0].process.wait()
        supervisor.check_once()
        assert supervisor.workers[0].restarts == 1
        assert_wire_identical(router.execute_batch(batch_a[half:]),
                              reference.execute_batch(batch_a[half:]))

        # kill -9 every worker; the router/supervisor objects are then
        # simply discarded, journal deliberately NOT close()d — the
        # unsealed tail stays exactly as the "crash" left it.
        for handle in supervisor.workers:
            handle.process.kill()
            handle.process.wait()
    finally:
        supervisor.stop()
        router.close()
    del journal, supervisor, router   # reference continues uninterrupted

    # --- generation 2: cold boot from the directory alone -----------
    journal2 = RecordJournal(directory=journal_dir, fsync="batch")
    assert journal2.total() == len(batch_a)
    specs2 = make_specs(checkpoint, tmp_path, 2)
    supervisor2 = Supervisor(specs2, journal=journal2, boot_timeout=60.0)
    supervisor2.start()
    assert supervisor2.replay_all() == len(batch_a)
    router2 = ScatterGatherRouter([spec.base_url for spec in specs2],
                                  timeout=10.0, journal=journal2)
    supervisor2.attach_router(router2)
    try:
        ours = router2.execute_batch(batch_b)
        theirs = reference.execute_batch(batch_b)
        assert_wire_identical(ours, theirs)
        # The explicit history-length check: every ack's post-append
        # length matches the uninterrupted service, so the replayed
        # histories neither dropped nor duplicated a single record.
        assert [reply.history_length for reply in ours] == \
            [reply.history_length for reply in theirs]
        final = {s: 5 for s in students}   # 3 + 2 rounds per student
        assert {e.student_id: r.history_length
                for e, r in zip(batch_b, ours)} == final

        assert_wire_identical(router2.execute_batch(mixed),
                              reference.execute_batch(mixed))
        assert router2.health()["status"] == "ok"
        assert router2.health()["journal"]["durable"] is True
    finally:
        supervisor2.stop()
        router2.close()
        journal2.close()
        reference.close()
