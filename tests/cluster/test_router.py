"""Scatter-gather router: bit-identity with a single Service, failures.

Workers here are thread-backed (each a full ``Service`` + HTTP gateway
in this process, with its own identically-seeded model object), so the
routing/merging logic is exercised over real sockets without process
spawn costs; ``tests/cluster/test_process.py`` and the CI selfcheck
cover the real multi-process stack.
"""

import numpy as np
import pytest

from repro.core import ENCODERS, RCKT, RCKTConfig
from repro.cluster import RecordJournal, ScatterGatherRouter
from repro.serve import (PROTOCOL_VERSION, BatchEnvelope,
                         CandidateQuestion, ExplainQuery, HistoryEdit,
                         InferenceEngine, InvalidQuestion, MalformedQuery,
                         RecommendQuery, RecordEvent, RecourseQuery,
                         ScoreQuery, Service, ServiceClient,
                         ShardUnavailable, UnknownQueryType, WhatIfQuery,
                         is_error, query_from_wire, start_http_thread,
                         to_wire)
from repro.cluster.supervisor import free_port

NUM_QUESTIONS = 30
NUM_CONCEPTS = 5


def make_model(encoder="dkt"):
    # Seeded init: every call returns bit-identical weights, which is
    # how N thread-backed "workers" serve one logical checkpoint.
    return RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                RCKTConfig(encoder=encoder, dim=8, layers=1, seed=3))


def make_records(students, rounds=3, seed=17):
    rng = np.random.default_rng(seed)
    return [RecordEvent(student, int(rng.integers(1, NUM_QUESTIONS + 1)),
                        int(rng.integers(0, 2)),
                        (int(rng.integers(1, NUM_CONCEPTS + 1)),))
            for _ in range(rounds) for student in students]


def mixed_queries(students):
    queries = []
    for index, student in enumerate(students):
        question = 1 + (7 * index) % NUM_QUESTIONS
        concepts = (1 + index % NUM_CONCEPTS,)
        queries.append(ScoreQuery(student, question, concepts))
        queries.append(ExplainQuery(student))
        queries.append(WhatIfQuery(student, question, concepts,
                                   (HistoryEdit(0, "flip"),)))
        queries.append(RecommendQuery(
            student, (CandidateQuestion(question, (1,)),
                      CandidateQuestion(1 + (question + 5) % NUM_QUESTIONS,
                                        (2,))),
            top_k=2, horizon=2))
        queries.append(RecourseQuery(
            student, question, concepts, threshold=0.95, max_edits=2,
            beam_width=2,
            candidates=(CandidateQuestion(question, (1,)),
                        CandidateQuestion(1 + (question + 5)
                                          % NUM_QUESTIONS, (2,)))))
    return queries


class ThreadCluster:
    """N gateway-served worker Services + a router + a reference."""

    def __init__(self, shards, encoder="dkt"):
        self.services = []
        self.servers = []
        urls = []
        for _ in range(shards):
            service = Service(InferenceEngine(make_model(encoder)))
            server, _ = start_http_thread(service)
            self.services.append(service)
            self.servers.append(server)
            urls.append(f"http://127.0.0.1:{server.server_port}")
        self.journal = RecordJournal()
        self.router = ScatterGatherRouter(urls, timeout=10.0,
                                          journal=self.journal)
        self.reference = Service(InferenceEngine(make_model(encoder)))

    def close(self):
        self.router.close()
        for server in self.servers:
            server.shutdown()
            server.server_close()
        for service in self.services:
            service.close()
        self.reference.close()


@pytest.fixture()
def cluster():
    built = ThreadCluster(shards=2)
    yield built
    built.close()


def wire_equal(ours, reference, atol: float) -> bool:
    """Structural wire equality, floats compared to ``atol``.

    ``atol=0`` is strict bitwise identity.  The attention encoders get
    ``atol`` of a few ulp: a shard's sub-envelope pads to its *own* max
    sequence length, and BLAS reduction blocking over a different
    padded width may differ in the last bit — per-row math is
    identical, only the summation order inside matmul changes.  (The
    LSTM encoder steps column by column, so its scores are exactly
    bit-identical regardless of batch geometry.)
    """
    if type(ours) is not type(reference):
        return False
    if isinstance(ours, dict):
        return ours.keys() == reference.keys() and all(
            wire_equal(ours[key], reference[key], atol) for key in ours)
    if isinstance(ours, list):
        return len(ours) == len(reference) and all(
            wire_equal(a, b, atol) for a, b in zip(ours, reference))
    if isinstance(ours, float):
        return abs(ours - reference) <= atol
    return ours == reference


def assert_wire_identical(cluster_replies, reference_replies,
                          atol: float = 0.0):
    assert len(cluster_replies) == len(reference_replies)
    for ours, reference in zip(cluster_replies, reference_replies):
        assert wire_equal(to_wire(ours), to_wire(reference), atol), \
            f"{to_wire(ours)} != {to_wire(reference)}"


# ---------------------------------------------------------------------------
# The parity contract
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("encoder", ENCODERS)
def test_mixed_envelope_bit_identical_to_single_service(encoder):
    # dkt: strict bitwise identity.  sakt/akt: identical up to a few
    # ulp of BLAS reduction order on differing padded widths (see
    # wire_equal) — kept tolerant so the assertion is portable across
    # BLAS builds rather than pinned to this machine's blocking.
    atol = 0.0 if encoder == "dkt" else 1e-12
    built = ThreadCluster(shards=2, encoder=encoder)
    try:
        students = [f"{encoder}-student-{k}" for k in range(6)]
        records = make_records(students)
        assert_wire_identical(built.router.execute_batch(records),
                              built.reference.execute_batch(records))
        mixed = mixed_queries(students)
        assert_wire_identical(built.router.execute_batch(mixed),
                              built.reference.execute_batch(mixed),
                              atol=atol)
    finally:
        built.close()


def test_three_shards_and_interleaved_records_and_reads():
    built = ThreadCluster(shards=3)
    try:
        students = [f"s{k}" for k in range(9)]
        # Records and reads interleaved in one envelope: records still
        # apply first (per student = per shard), identically on both
        # sides.
        envelope = []
        for student in students:
            envelope.append(ScoreQuery(student, 3, (1,)))
            envelope.append(RecordEvent(student, 5, 1, (2,)))
            envelope.append(RecordEvent(student, 9, 0, (3,)))
            envelope.append(ExplainQuery(student))
        assert_wire_identical(built.router.execute_batch(envelope),
                              built.reference.execute_batch(envelope))
    finally:
        built.close()


def test_single_query_and_envelope_through_execute(cluster):
    students = ["a", "b", "c"]
    records = make_records(students, rounds=2)
    cluster.router.execute_batch(records)
    cluster.reference.execute_batch(records)
    query = ScoreQuery("a", 3, (1,))
    assert to_wire(cluster.router.execute(query)) \
        == to_wire(cluster.reference.execute(query))
    envelope = BatchEnvelope(tuple(mixed_queries(students)))
    assert to_wire(cluster.router.execute(envelope)) \
        == to_wire(cluster.reference.execute(envelope))


def test_error_parity_including_canonical_messages(cluster):
    students = ["amy", "bob"]
    setup = make_records(students, rounds=2)
    cluster.router.execute_batch(setup)
    cluster.reference.execute_batch(setup)
    probes = [
        ScoreQuery("amy", 9999, (1,)),               # invalid question
        ScoreQuery("amy", 3, (999,)),                # invalid concept
        ExplainQuery("nobody"),                      # unknown student
        ScoreQuery("amy", 3, (1,), model="missing"),  # model not loaded
        WhatIfQuery("amy", 3, (1,), (HistoryEdit(99, "flip"),)),
        RecordEvent("amy", 3, 7, (1,)),              # malformed correct
        # A nested envelope: rejected with the facade's exact wording
        # (the router forwards it to a worker Service rather than
        # duplicating the message).
        BatchEnvelope((ScoreQuery("amy", 3, (1,)),)),
        ScoreQuery("amy", 3, (1,)),                  # healthy sibling
    ]
    ours = cluster.router.execute_batch(probes)
    reference = cluster.reference.execute_batch(probes)
    assert_wire_identical(ours, reference)
    assert isinstance(ours[0], InvalidQuestion)
    assert isinstance(ours[6], MalformedQuery)
    assert ours[7].ok


def test_predecoded_malformed_and_foreign_objects(cluster):
    garbage = query_from_wire({"v": 1, "type": "teleport"})
    replies = cluster.router.execute_batch([garbage, object(),
                                            ScoreQuery("amy", 3, (1,))])
    reference = cluster.reference.execute_batch(
        [garbage, object(), ScoreQuery("amy", 3, (1,))])
    assert_wire_identical(replies, reference)
    assert isinstance(replies[0], MalformedQuery)
    assert isinstance(replies[1], MalformedQuery)


# ---------------------------------------------------------------------------
# Failure containment
# ---------------------------------------------------------------------------
def test_dead_shard_degrades_only_its_slots(cluster):
    dead_url = f"http://127.0.0.1:{free_port()}"
    router = ScatterGatherRouter(
        [cluster.router.shard_urls[0], dead_url], timeout=2.0)
    try:
        students = [f"s{k}" for k in range(10)]
        queries = [ScoreQuery(student, 3, (1,)) for student in students]
        replies = router.execute_batch(queries)
        dead = [r for r in replies if isinstance(r, ShardUnavailable)]
        alive = [r for r in replies if not is_error(r)]
        assert len(dead) + len(alive) == len(students)
        assert dead and alive   # both shards drew students
        for error in dead:
            assert error.code == "shard_unavailable"
            assert error.http_status == 503
            assert error.detail("shard") == 1
    finally:
        router.close()


def test_draining_shard_answers_unavailable_and_resumes(cluster):
    students = [f"s{k}" for k in range(8)]
    cluster.router.execute_batch(make_records(students, rounds=1))
    owners = {s: cluster.router.shard_of(ScoreQuery(s, 3, (1,)))
              for s in students}
    drained = 0
    cluster.router.drain(drained)
    replies = cluster.router.execute_batch(
        [ScoreQuery(s, 3, (1,)) for s in students])
    for student, reply in zip(students, replies):
        if owners[student] == drained:
            assert isinstance(reply, ShardUnavailable)
            assert "draining" in reply.message
        else:
            assert reply.ok
    cluster.router.resume(drained)
    assert all(r.ok for r in cluster.router.execute_batch(
        [ScoreQuery(s, 3, (1,)) for s in students]))


# ---------------------------------------------------------------------------
# Journal + restart (simulated in-process)
# ---------------------------------------------------------------------------
def test_journal_replays_in_worker_ack_order_not_arrival_order():
    """Concurrent envelopes can journal one student's acks out of
    order; replay must re-sort by the worker-side sequence (the
    acknowledged history_length) and drop duplicate acks."""
    journal = RecordJournal()
    second = to_wire(RecordEvent("amy", 5, 0, (1,)))
    first = to_wire(RecordEvent("amy", 3, 1, (2,)))
    journal.append(0, second, sequence=2)     # reply arrived first ...
    journal.append(0, first, sequence=1)      # ... but applied second
    journal.append(0, first, sequence=1)      # a retried ack, twice
    journal.append(0, to_wire(RecordEvent("bob", 9, 1, (3,))),
                   sequence=1)
    envelopes = list(journal.envelopes(0))
    assert len(envelopes) == 1
    replayed = envelopes[0]["queries"]
    amy = [q for q in replayed if q["student_id"] == "amy"]
    assert [q["question_id"] for q in amy] == [3, 5]   # worker order
    assert len(replayed) == 3                          # dupe dropped
    assert journal.count(0) == 4                       # log untouched


def test_journal_replay_restores_bit_identity(cluster):
    students = [f"s{k}" for k in range(8)]
    records = make_records(students)
    assert all(r.ok for r in cluster.router.execute_batch(records))
    cluster.reference.execute_batch(records)
    sizes = cluster.journal.sizes()
    assert sum(sizes.values()) == len(records)
    mixed = mixed_queries(students)
    before = cluster.router.execute_batch(mixed)

    # "Crash" shard 0: drop its server + Service (all in-memory state)
    # and boot a cold replacement on the same port.
    shard = 0
    port = cluster.servers[shard].server_port
    cluster.servers[shard].shutdown()
    cluster.servers[shard].server_close()
    cluster.services[shard].close()
    fresh = Service(InferenceEngine(make_model()))
    server, _ = start_http_thread(fresh, port=port)
    cluster.services[shard] = fresh
    cluster.servers[shard] = server

    # Replay the journal the way the supervisor does.
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=10.0)
    for envelope in cluster.journal.envelopes(shard, batch_size=3):
        replies = client.batch([query_from_wire(q)
                                for q in envelope["queries"]])
        assert all(r.ok for r in replies)
    client.close()

    after = cluster.router.execute_batch(mixed)
    assert_wire_identical(after, before)
    assert_wire_identical(after, cluster.reference.execute_batch(mixed))


# ---------------------------------------------------------------------------
# Warm blue/green rollout across shards
# ---------------------------------------------------------------------------
def test_rollout_fans_out_and_stays_bit_identical(cluster, tmp_path):
    students = [f"s{k}" for k in range(8)]
    records = make_records(students)
    cluster.router.execute_batch(records)
    cluster.reference.execute_batch(records)
    mixed = mixed_queries(students)
    before = cluster.router.execute_batch(mixed)

    retrained = InferenceEngine(RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                                     RCKTConfig(encoder="dkt", dim=8,
                                                layers=1, seed=11)))
    path = tmp_path / "green.npz"
    retrained.save(path)
    results = cluster.router.rollout(str(path), warm_top=16)
    assert len(results) == 2
    assert all(not is_error(result) for result in results)
    assert all(result["warmed"] >= 1 for result in results)
    cluster.reference.rollout(path, warm_top=16)

    after = cluster.router.execute_batch(mixed)
    assert_wire_identical(after, cluster.reference.execute_batch(mixed))
    # The rollout actually changed the serving weights.
    changed = [a for a, b in zip(after, before)
               if hasattr(a, "score") and a.score != b.score]
    assert changed


def test_router_http_face_and_health(cluster):
    from repro.cluster import start_router_thread
    students = ["a", "b", "c", "d"]
    cluster.router.execute_batch(make_records(students, rounds=2))
    cluster.reference.execute_batch(make_records(students, rounds=2))
    server, _ = start_router_thread(cluster.router)
    try:
        client = ServiceClient(f"http://127.0.0.1:{server.server_port}",
                               timeout=10.0)
        health = client.health()
        assert health["status"] == "ok"
        assert [s["ok"] for s in health["shards"]] == [True, True]
        assert health["ring"]["shards"] == 2
        assert health["protocol"] == PROTOCOL_VERSION
        assert "recourse" in health["capabilities"]["query_types"]
        models = client.models()
        assert models["models"][0]["num_questions"] == NUM_QUESTIONS
        mixed = mixed_queries(students)
        assert_wire_identical(client.batch(mixed),
                              cluster.reference.execute_batch(mixed))
        single = client.query(ScoreQuery("a", 3, (1,)))
        assert to_wire(single) == to_wire(
            cluster.reference.execute(ScoreQuery("a", 3, (1,))))
        client.close()
    finally:
        server.shutdown()
        server.server_close()


# ---------------------------------------------------------------------------
# Version negotiation: identical bytes from both public surfaces
# ---------------------------------------------------------------------------
def test_negotiation_errors_byte_identical_on_gateway_and_router(cluster):
    """An unsupported version or unknown/ungated type must serialize to
    the same JSON from a worker gateway and from the cluster router —
    clients cannot tell which surface rejected them."""
    import json
    import urllib.error
    import urllib.request

    from repro.cluster import start_router_thread

    def post(port, body):
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/query", data=body,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=10.0) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    recourse_v1 = to_wire(RecourseQuery(
        "amy", 3, (1,), candidates=(CandidateQuestion(4, (1,)),)))
    recourse_v1["v"] = 1
    bodies = [
        b'{"v": 99, "type": "score", "student_id": "amy", '
        b'"question_id": 3, "concept_ids": [1]}',
        b'{"v": 1, "type": "teleport"}',
        b'{"v": 2, "type": "teleport"}',
        json.dumps(recourse_v1).encode(),
    ]
    server, _ = start_router_thread(cluster.router)
    gateway_port = cluster.servers[0].server_port
    try:
        for body in bodies:
            gateway = post(gateway_port, body)
            router = post(server.server_port, body)
            assert gateway == router, (gateway, router)
            assert gateway[0] == 400
    finally:
        server.shutdown()
        server.server_close()


def test_predecoded_version_errors_stay_local(cluster):
    """Error values decoded before routing fill their slots without a
    shard round-trip, identically to the reference facade."""
    probes = [
        query_from_wire({"v": 99, "type": "score"}),
        query_from_wire({"v": 1, "type": "recourse", "student_id": "amy",
                         "question_id": 3, "concept_ids": [1]}),
        ScoreQuery("amy", 3, (1,)),
    ]
    assert isinstance(probes[1], UnknownQueryType)
    cluster.router.execute_batch([RecordEvent("amy", 5, 1, (2,))])
    cluster.reference.execute_batch([RecordEvent("amy", 5, 1, (2,))])
    assert_wire_identical(cluster.router.execute_batch(probes),
                          cluster.reference.execute_batch(probes))
