"""``python -m repro.online`` run mode (the selfcheck is a CI lane)."""

import json

import pytest

from repro.cluster import RecordJournal
from repro.core import RCKT, RCKTConfig
from repro.data import SimulationConfig, StudentSimulator
from repro.online.__main__ import main
from repro.serve import InferenceEngine, RecordEvent, Service, to_wire

NUM_QUESTIONS = 20
NUM_CONCEPTS = 5


@pytest.fixture()
def journal_setup(tmp_path):
    checkpoint = tmp_path / "incumbent.npz"
    InferenceEngine(RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                         RCKTConfig(encoder="dkt", dim=8, layers=1,
                                    seed=0))).save(checkpoint)
    simulator = StudentSimulator(SimulationConfig(
        num_students=12, num_questions=NUM_QUESTIONS,
        num_concepts=NUM_CONCEPTS, sequence_length=(8, 12)), seed=3)
    journal = RecordJournal(tmp_path / "journal", fsync="off")
    for sequence in simulator.simulate():
        for position, interaction in enumerate(sequence):
            event = RecordEvent(f"s-{sequence.student_id}",
                                interaction.question_id,
                                interaction.correct,
                                interaction.concept_ids)
            assert journal.append(sequence.student_id % 2, to_wire(event),
                                  position + 1) is None
    journal.close()
    return tmp_path, checkpoint


def test_run_mode_produces_checkpoint_and_report(journal_setup):
    tmp_path, checkpoint = journal_setup
    output = tmp_path / "refreshed.npz"
    report_path = tmp_path / "report.json"
    code = main(["--journal-dir", str(tmp_path / "journal"),
                 "--checkpoint", str(checkpoint),
                 "--output", str(output),
                 "--report", str(report_path),
                 "--epochs", "2", "--max-auc-drop", "0.1",
                 "--horizons", "1", "2"])
    assert code == 0
    report = json.loads(report_path.read_text())
    assert report["journal"]["events"] > 0
    assert report["prequential"]["events"] == report["journal"]["events"]
    assert report["fine_tune"]["batches"] > 0
    assert report["gate"]["allowed"] in (True, False)
    assert report["rollout"]["refused"] is not report["gate"]["allowed"]
    assert sorted(report["multi_step"]) == ["1", "2"]
    # the refreshed checkpoint is servable as-is
    service = Service.from_checkpoint(output)
    service.close()


def test_run_mode_argument_validation(journal_setup, capsys):
    tmp_path, checkpoint = journal_setup
    assert main(["--checkpoint", str(checkpoint)]) == 2
    assert main(["--journal-dir", str(tmp_path / "journal"),
                 "--checkpoint", str(checkpoint),
                 "--output", str(tmp_path / "out.npz"),
                 "--eval-fraction", "1.5"]) == 2
    empty = tmp_path / "empty-journal"
    assert main(["--journal-dir", str(empty),
                 "--checkpoint", str(checkpoint),
                 "--output", str(tmp_path / "out.npz")]) == 1
    capsys.readouterr()
