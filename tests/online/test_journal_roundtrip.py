"""Golden round trip: journaled events == directly loaded interactions.

The online trainer's entire claim to correctness rests on the journal →
dataset conversion being *lossless*: events replayed from a durable WAL
directory must produce bit-identical training batches to the same
interactions handed to ``build_dataset`` / ``load_dataset`` directly.
These tests pin that at the array level (collated batches compare equal
bit for bit) and at the model level (identical scores whichever path
the history arrived by, for all three encoders).
"""

import numpy as np
import pytest

from repro.cluster import RecordJournal
from repro.core import RCKT, RCKTConfig
from repro.data import (EventAccumulator, SimulationConfig, StudentSimulator,
                        build_dataset, collate, dataset_from_records)
from repro.serve import RecordEvent, ScoreQuery, Service, is_error, to_wire

NUM_QUESTIONS = 20
NUM_CONCEPTS = 5
ENCODERS = ("dkt", "sakt", "akt")
ATOL = 1e-10
BATCH_FIELDS = ("questions", "responses", "concepts", "concept_counts",
                "mask")


def student_key(student_id) -> str:
    return f"student-{student_id}"


@pytest.fixture(scope="module")
def sequences():
    simulator = StudentSimulator(SimulationConfig(
        num_students=12, num_questions=NUM_QUESTIONS,
        num_concepts=NUM_CONCEPTS, sequence_length=(8, 16)), seed=13)
    return simulator.simulate()


@pytest.fixture(scope="module")
def replayed(sequences, tmp_path_factory):
    """Events journaled durably across two shards, then cold-booted."""
    directory = tmp_path_factory.mktemp("journal")
    journal = RecordJournal(directory, fsync="off")
    for sequence in sequences:
        for position, interaction in enumerate(sequence):
            event = RecordEvent(student_key(sequence.student_id),
                                interaction.question_id,
                                interaction.correct,
                                interaction.concept_ids)
            assert journal.append(sequence.student_id % 2, to_wire(event),
                                  position + 1) is None
    journal.close()
    cold = RecordJournal(directory, fsync="off")
    try:
        return cold.replay_records()
    finally:
        cold.close()


def test_cold_boot_replay_is_lossless(sequences, replayed):
    assert len(replayed) == sum(len(s) for s in sequences)
    accumulator = EventAccumulator()
    accumulator.extend(replayed)
    by_student = {s.student_id: s for s in accumulator.sequences()}
    for original in sequences:
        streamed = by_student[student_key(original.student_id)]
        assert streamed.question_ids == original.question_ids
        assert streamed.responses == original.responses
        assert [i.concept_ids for i in streamed] \
            == [i.concept_ids for i in original]


def test_collated_batches_are_bit_identical(sequences, replayed):
    streamed = dataset_from_records(replayed, NUM_QUESTIONS, NUM_CONCEPTS)
    direct = build_dataset("direct", sequences, NUM_QUESTIONS, NUM_CONCEPTS)
    assert len(streamed) == len(direct)
    streamed_by_student = {s.student_id: s for s in streamed}
    for original in direct:
        pair = streamed_by_student[student_key(original.student_id)]
        ours, theirs = collate([pair]), collate([original])
        for name in BATCH_FIELDS:
            left, right = getattr(ours, name), getattr(theirs, name)
            assert left.dtype == right.dtype
            assert left.tobytes() == right.tobytes(), name


def test_duplicate_and_reordered_appends_replay_once(tmp_path):
    journal = RecordJournal(tmp_path / "journal", fsync="off")
    event = RecordEvent("dup", 3, 1, (2,))
    later = RecordEvent("dup", 5, 0, (1,))
    # Acknowledged out of order and the first entry twice: replay must
    # sort by per-student sequence and drop the duplicate.
    assert journal.append(0, to_wire(later), 2) is None
    assert journal.append(0, to_wire(event), 1) is None
    assert journal.append(0, to_wire(event), 1) is None
    records = journal.replay_records()
    journal.close()
    assert [(r.question_id, r.correct) for r in records] == [(3, 1), (5, 0)]


@pytest.mark.parametrize("encoder", ENCODERS)
def test_scores_identical_whichever_path_loaded_history(sequences, replayed,
                                                        encoder):
    model = RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                 RCKTConfig(encoder=encoder, dim=8, layers=1, seed=4))
    direct = build_dataset("direct", sequences, NUM_QUESTIONS, NUM_CONCEPTS)
    offline = Service(model)
    streamed = Service(model)
    try:
        offline.engine().load_dataset(direct)
        for reply in streamed.execute_batch(replayed):
            assert not is_error(reply)
        rng = np.random.default_rng(21)
        for sequence in sequences:
            question = int(rng.integers(1, NUM_QUESTIONS + 1))
            concepts = (int(rng.integers(1, NUM_CONCEPTS + 1)),)
            via_log = offline.execute(
                ScoreQuery(sequence.student_id, question, concepts))
            via_journal = streamed.execute(
                ScoreQuery(student_key(sequence.student_id), question,
                           concepts))
            assert not is_error(via_log) and not is_error(via_journal)
            assert abs(via_log.score - via_journal.score) < ATOL
    finally:
        offline.close()
        streamed.close()
