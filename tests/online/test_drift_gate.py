"""Drift gate: refusals are taxonomy values, the incumbent never moves."""

import pytest

from repro.core import RCKT, RCKTConfig
from repro.data import SimulationConfig, StudentSimulator, build_dataset
from repro.online import DriftGate, OnlineTrainer, auto_rollout
from repro.serve import (InferenceEngine, RecordEvent, RolloutRefused,
                         ScoreQuery, Service, is_error, to_wire)

NUM_QUESTIONS = 20
NUM_CONCEPTS = 5


def tiny_model(seed: int) -> RCKT:
    return RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                RCKTConfig(encoder="dkt", dim=8, layers=1, seed=seed))


@pytest.fixture(scope="module")
def corpus():
    simulator = StudentSimulator(SimulationConfig(
        num_students=24, num_questions=NUM_QUESTIONS,
        num_concepts=NUM_CONCEPTS, sequence_length=(10, 16)), seed=23)
    sequences = simulator.simulate()
    records = [RecordEvent(f"s-{sequence.student_id}",
                           interaction.question_id, interaction.correct,
                           interaction.concept_ids)
               for sequence in sequences for interaction in sequence]
    return sequences, records


@pytest.fixture(scope="module")
def trained_checkpoint(corpus, tmp_path_factory):
    """A checkpoint fine-tuned on the corpus: beats a random model."""
    sequences, _ = corpus
    tmp = tmp_path_factory.mktemp("gate")
    incumbent = tmp / "incumbent.npz"
    trained = tmp / "trained.npz"
    InferenceEngine(tiny_model(0)).save(incumbent)
    dataset = build_dataset("gate", sequences, NUM_QUESTIONS, NUM_CONCEPTS)
    with OnlineTrainer(incumbent, epochs=4, seed=123) as trainer:
        trainer.fine_tune(dataset)
        trainer.save(trained)
    return incumbent, trained


class TestGateDecision:
    def test_waives_below_min_events(self, corpus):
        _, records = corpus
        gate = DriftGate(records[:4], min_events=50)
        decision = gate.evaluate(tiny_model(0), tiny_model(9))
        assert decision.allowed
        assert "waived" in decision.reason
        assert gate.last_decision is decision

    def test_waives_on_single_class_stream(self):
        events = [RecordEvent("mono", q, 1, (1,)) for q in range(1, 15)]
        gate = DriftGate(events, min_events=5)
        decision = gate.evaluate(tiny_model(0), tiny_model(9))
        assert decision.allowed
        assert "single-class" in decision.reason
        assert decision.candidate_auc is None

    def test_refuses_a_degraded_candidate(self, corpus,
                                          trained_checkpoint):
        _, records = corpus
        _, trained = trained_checkpoint
        incumbent_engine = InferenceEngine.from_checkpoint(trained)
        try:
            gate = DriftGate(records, max_auc_drop=0.05, min_events=10)
            decision = gate.evaluate(incumbent_engine.model, tiny_model(9))
            assert not decision.allowed
            assert decision.delta < -0.05
            assert "refused" in decision.reason
            details = decision.to_details()
            assert details["events"] == len(records)
            assert details["threshold"] == 0.05
        finally:
            incumbent_engine.close()

    def test_allows_an_improved_candidate(self, corpus,
                                          trained_checkpoint):
        _, records = corpus
        _, trained = trained_checkpoint
        candidate = InferenceEngine.from_checkpoint(trained)
        try:
            gate = DriftGate(records, max_auc_drop=0.05, min_events=10)
            decision = gate.evaluate(tiny_model(0), candidate.model)
            assert decision.allowed
            assert decision.delta > 0
        finally:
            candidate.close()

    def test_validates_parameters(self, corpus):
        _, records = corpus
        with pytest.raises(ValueError):
            DriftGate(records, max_auc_drop=-0.1)
        with pytest.raises(ValueError):
            DriftGate(records, min_events=0)


class TestServiceRolloutGate:
    def test_refusal_is_returned_never_raised(self, corpus,
                                              trained_checkpoint,
                                              tmp_path):
        """Service.rollout(gate=...) must return the RolloutRefused
        value and leave the incumbent engine serving untouched."""
        _, records = corpus
        incumbent, trained = trained_checkpoint
        degraded = tmp_path / "degraded.npz"
        InferenceEngine(tiny_model(9)).save(degraded)

        service = Service.from_checkpoint(trained)
        try:
            service.execute_batch(records)
            incumbent_engine = service.engine()
            gate = DriftGate(records, max_auc_drop=0.05, min_events=10)
            verdict = service.rollout(degraded, gate=gate.service_gate())
            assert isinstance(verdict, RolloutRefused)
            assert verdict.code == "rollout_refused"
            assert verdict.detail("candidate_auc") \
                < verdict.detail("incumbent_auc")
            assert service.engine() is incumbent_engine
        finally:
            service.close()

    def test_allowed_gate_still_swaps_warm(self, corpus,
                                           trained_checkpoint):
        _, records = corpus
        incumbent, trained = trained_checkpoint
        service = Service.from_checkpoint(incumbent)
        try:
            service.execute_batch(records)
            # a few reads build stream caches, so the standby warms them
            service.execute_batch([ScoreQuery(r.student_id, 3, (1,))
                                   for r in records[:6]])
            gate = DriftGate(records, max_auc_drop=0.05, min_events=10)
            summary = service.rollout(trained, gate=gate.service_gate())
            assert not is_error(summary)
            assert summary["warmed"] > 0
            assert gate.last_decision.allowed
        finally:
            service.close()

    def test_refused_rollout_wire_form_is_protocol_v2(self):
        refused = RolloutRefused(message="drift", details={"delta": -0.2})
        wire = to_wire(refused)
        assert wire["type"] == "error"
        assert wire["code"] == "rollout_refused"
        assert wire["details"]["delta"] == -0.2


class TestAutoRollout:
    def test_service_target_round_trip(self, corpus, trained_checkpoint,
                                       tmp_path):
        _, records = corpus
        incumbent, trained = trained_checkpoint
        degraded = tmp_path / "degraded.npz"
        InferenceEngine(tiny_model(9)).save(degraded)
        service = Service.from_checkpoint(incumbent)
        try:
            service.execute_batch(records)
            gate = DriftGate(records, max_auc_drop=0.05, min_events=10)
            summary = auto_rollout(service, trained, gate)
            assert not is_error(summary)
            refused = auto_rollout(service, degraded, gate)
            assert isinstance(refused, RolloutRefused)
        finally:
            service.close()

    def test_non_service_target_needs_incumbent_model(self, corpus,
                                                      trained_checkpoint):
        _, records = corpus
        _, trained = trained_checkpoint
        gate = DriftGate(records, max_auc_drop=0.05, min_events=10)

        class FakeRouter:
            def __init__(self):
                self.shipped = []

            def rollout(self, checkpoint):
                self.shipped.append(checkpoint)
                return [{"status": "ok"}]

        router = FakeRouter()
        with pytest.raises(ValueError):
            auto_rollout(router, trained, gate)

        # allowed pre-check fans out; refused pre-check never ships
        summary = auto_rollout(router, trained, gate,
                               incumbent_model=tiny_model(0))
        assert summary == [{"status": "ok"}]
        trained_engine = InferenceEngine.from_checkpoint(trained)
        try:
            refused = auto_rollout(router, str(trained), gate,
                                   incumbent_model=trained_engine.model)
            # candidate == incumbent: zero drop is within any threshold
            assert not is_error(refused)
        finally:
            trained_engine.close()
        assert router.shipped == [trained, str(trained)]
