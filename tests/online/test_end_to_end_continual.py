"""The closed serve→train loop against a real multi-process cluster.

One compact end-to-end test (the thread-level pieces are covered by the
rest of ``tests/online``; ``python -m repro.online --selfcheck`` is the
CI smoke lane): boot a supervisor-spawned two-shard cluster with a
durable journal, stream synthetic traffic through the router, replay
the journal into the online trainer, ship the refreshed checkpoint back
through a drift-gated warm rollout, and prove the post-refresh cluster
is parity-consistent with an in-process Service on the refreshed
checkpoint — then prove a degraded checkpoint is refused as a value.
"""

from repro.cluster import (RecordJournal, ScatterGatherRouter, Supervisor,
                           WorkerSpec, free_port)
from repro.core import RCKT, RCKTConfig
from repro.data import SimulationConfig, StudentSimulator, \
    dataset_from_records
from repro.online import DriftGate, OnlineTrainer, auto_rollout, \
    prequential_run
from repro.serve import (DEFAULT_MODEL, InferenceEngine, RecordEvent,
                         RolloutRefused, ScoreQuery, Service, is_error,
                         to_wire)

NUM_QUESTIONS = 20
NUM_CONCEPTS = 5


def tiny_engine(seed: int) -> InferenceEngine:
    return InferenceEngine(RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                                RCKTConfig(encoder="dkt", dim=8, layers=1,
                                           seed=seed)))


def test_continual_loop_from_journal_to_gated_rollout(tmp_path):
    incumbent_path = tmp_path / "incumbent.npz"
    refreshed_path = tmp_path / "refreshed.npz"
    degraded_path = tmp_path / "degraded.npz"
    tiny_engine(2).save(incumbent_path)
    tiny_engine(9).save(degraded_path)

    simulator = StudentSimulator(SimulationConfig(
        num_students=16, num_questions=NUM_QUESTIONS,
        num_concepts=NUM_CONCEPTS, sequence_length=(10, 16)), seed=31)
    sequences = simulator.simulate()
    events = [RecordEvent(f"live-{sequence.student_id}",
                          interaction.question_id, interaction.correct,
                          interaction.concept_ids)
              for sequence in sequences for interaction in sequence]
    probes = [ScoreQuery(f"live-{sequence.student_id}", 7, (2,))
              for sequence in sequences]

    journal = RecordJournal(tmp_path / "journal", fsync="off")
    specs = [WorkerSpec(shard_id=shard, port=free_port(),
                        checkpoints=[(DEFAULT_MODEL, str(incumbent_path))],
                        log_path=str(tmp_path / f"worker{shard}.log"))
             for shard in range(2)]
    supervisor = Supervisor(specs, journal=journal, boot_timeout=60.0)
    supervisor.start()
    router = ScatterGatherRouter([spec.base_url for spec in specs],
                                 timeout=10.0, journal=journal)
    supervisor.attach_router(router)
    try:
        # Live traffic: every acknowledged record lands in the journal.
        for reply in router.execute_batch(events):
            assert not is_error(reply)
        assert journal.total() == len(events)

        # The trainer cold-boots the journal from the directory alone.
        replayer = RecordJournal(tmp_path / "journal", fsync="off")
        records = replayer.replay_records()
        replayer.close()
        assert len(records) == len(events)

        # Prequential baseline on the incumbent (also builds the
        # reference histories used for parity below).
        incumbent_service = Service.from_checkpoint(incumbent_path)
        baseline = prequential_run(incumbent_service, records)
        assert baseline.events == len(records)

        # Fine-tune the incumbent on the replayed stream.
        with OnlineTrainer(incumbent_path, epochs=4, seed=123) as trainer:
            dataset = dataset_from_records(records, trainer.num_questions,
                                           trainer.num_concepts)
            assert trainer.fine_tune(dataset)["batches"] > 0
            trainer.save(refreshed_path)

        # Drift-gated warm rollout across the cluster.
        gate = DriftGate(records, max_auc_drop=0.05, min_events=10)
        summaries = auto_rollout(
            router, str(refreshed_path), gate,
            incumbent_model=incumbent_service.engine().model)
        assert isinstance(summaries, list)
        assert not any(is_error(summary) for summary in summaries)
        assert gate.last_decision.allowed
        incumbent_service.close()

        # Post-refresh parity: the cluster must answer exactly like an
        # in-process Service on the refreshed checkpoint that saw the
        # same stream (dkt is bit-exact across process boundaries).
        reference = Service.from_checkpoint(refreshed_path)
        try:
            for reply in reference.execute_batch(records):
                assert not is_error(reply)
            ours = [to_wire(reply)
                    for reply in router.execute_batch(probes)]
            theirs = [to_wire(reply)
                      for reply in reference.execute_batch(probes)]
            assert ours == theirs

            # A degraded candidate is refused as a value — the cluster
            # keeps serving the refreshed weights untouched.
            refused = auto_rollout(router, str(degraded_path), gate,
                                   incumbent_model=reference.engine().model)
            assert isinstance(refused, RolloutRefused)
            assert refused.code == "rollout_refused"
            assert not gate.last_decision.allowed
            after = [to_wire(reply)
                     for reply in router.execute_batch(probes)]
            assert after == ours
        finally:
            reference.close()
    finally:
        supervisor.stop()
        router.close()
        journal.close()
