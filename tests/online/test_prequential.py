"""Prequential harness: streaming metrics, interleaving, k-step sweep."""

import numpy as np
import pytest

from repro.core import RCKT, RCKTConfig
from repro.data import SimulationConfig, StudentSimulator, build_dataset
from repro.eval import accuracy_score, auc_score
from repro.online import (StreamingMetrics, multi_step_sweep,
                          prequential_run, round_robin)
from repro.serve import RecordEvent, Service

NUM_QUESTIONS = 20
NUM_CONCEPTS = 5


@pytest.fixture(scope="module")
def records():
    simulator = StudentSimulator(SimulationConfig(
        num_students=10, num_questions=NUM_QUESTIONS,
        num_concepts=NUM_CONCEPTS, sequence_length=(6, 12)), seed=5)
    return [RecordEvent(f"s-{sequence.student_id}",
                        interaction.question_id, interaction.correct,
                        interaction.concept_ids)
            for sequence in simulator.simulate()
            for interaction in sequence]


def tiny_service() -> Service:
    return Service(RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                        RCKTConfig(encoder="dkt", dim=8, layers=1, seed=1)))


class TestStreamingMetrics:
    def test_auc_undefined_until_both_classes(self):
        metrics = StreamingMetrics()
        assert metrics.auc is None and metrics.accuracy is None
        metrics.update(1, 0.9)
        metrics.update(1, 0.4)
        assert metrics.auc is None          # single class: undefined
        assert metrics.accuracy is not None
        metrics.update(0, 0.2)
        assert metrics.auc is not None

    def test_matches_batch_metrics(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=50)
        scores = rng.random(50)
        metrics = StreamingMetrics()
        for label, score in zip(labels, scores):
            metrics.update(int(label), float(score))
        assert metrics.auc == pytest.approx(auc_score(labels, scores))
        assert metrics.accuracy \
            == pytest.approx(accuracy_score(labels, scores))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValueError):
            StreamingMetrics().update(2, 0.5)


class TestRoundRobin:
    def test_one_event_per_student_per_round(self, records):
        rounds = list(round_robin(records))
        for round_events in rounds:
            students = [event.student_id for event in round_events]
            assert len(students) == len(set(students))
        assert sum(len(r) for r in rounds) == len(records)

    def test_per_student_order_is_preserved(self, records):
        replayed = {}
        for round_events in round_robin(records):
            for event in round_events:
                replayed.setdefault(event.student_id, []).append(event)
        grouped = {}
        for event in records:
            grouped.setdefault(event.student_id, []).append(event)
        assert replayed == grouped


class TestPrequentialRun:
    def test_scores_every_event_and_records_them(self, records):
        service = tiny_service()
        try:
            report = prequential_run(service, records, checkpoint_every=40)
            assert report.events == len(records)
            assert report.auc is not None
            assert 0.0 <= report.accuracy <= 1.0
            # trajectory is cumulative and ends on the final totals
            counts = [point.events for point in report.trajectory]
            assert counts == sorted(counts)
            assert report.trajectory[-1].events == report.events
            assert report.trajectory[-1].auc == report.auc
            # the run leaves the service holding every full history
            engine = service.engine()
            for student, events in _grouped(records).items():
                assert engine.history_length(student) == len(events)
        finally:
            service.close()

    def test_interleaving_does_not_change_the_metrics(self, records):
        """Per-event scores depend only on that student's prior history,
        so the final metrics are invariant to the round-robin shuffle."""
        interleaved_service, grouped_service = tiny_service(), tiny_service()
        try:
            interleaved = prequential_run(interleaved_service, records,
                                          interleave=True)
            grouped = prequential_run(grouped_service, records,
                                      interleave=False)
            assert interleaved.events == grouped.events
            assert interleaved.auc == pytest.approx(grouped.auc, abs=1e-12)
            assert interleaved.accuracy \
                == pytest.approx(grouped.accuracy, abs=1e-12)
        finally:
            interleaved_service.close()
            grouped_service.close()

    def test_rejects_nonpositive_checkpoint_interval(self, records):
        service = tiny_service()
        try:
            with pytest.raises(ValueError):
                prequential_run(service, records, checkpoint_every=0)
        finally:
            service.close()


class TestMultiStepSweep:
    def test_horizon_structure_and_target_counts(self, records):
        simulator = StudentSimulator(SimulationConfig(
            num_students=8, num_questions=NUM_QUESTIONS,
            num_concepts=NUM_CONCEPTS, sequence_length=(6, 10)), seed=9)
        dataset = build_dataset("sweep", simulator.simulate(),
                                NUM_QUESTIONS, NUM_CONCEPTS)
        model = RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                     RCKTConfig(encoder="dkt", dim=8, layers=1, seed=3))
        min_history = 2
        sweep = multi_step_sweep(model, dataset, horizons=(1, 2, 3),
                                 min_history=min_history)
        assert sorted(sweep) == [1, 2, 3]
        for horizon, entry in sweep.items():
            expected = sum(
                max(0, len(sequence) - min_history - horizon + 1)
                for sequence in dataset)
            assert entry["targets"] == expected
            if entry["auc"] is not None:
                assert 0.0 <= entry["auc"] <= 1.0

    def test_horizon_one_matches_cold_next_step_scores(self):
        """k=1 must reproduce the standard next-step protocol exactly."""
        simulator = StudentSimulator(SimulationConfig(
            num_students=4, num_questions=NUM_QUESTIONS,
            num_concepts=NUM_CONCEPTS, sequence_length=(6, 8)), seed=2)
        dataset = build_dataset("next", simulator.simulate(),
                                NUM_QUESTIONS, NUM_CONCEPTS)
        model = RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                     RCKTConfig(encoder="dkt", dim=8, layers=1, seed=3))
        labels, scores = model.predict_dataset(dataset)
        sweep = multi_step_sweep(model, dataset, horizons=(1,),
                                 min_history=model.config.min_history)
        assert sweep[1]["targets"] == len(labels)
        assert sweep[1]["auc"] == pytest.approx(auc_score(labels, scores))

    def test_rejects_nonpositive_horizon(self, records):
        model = RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                     RCKTConfig(encoder="dkt", dim=8, layers=1, seed=3))
        dataset = build_dataset("empty", [], NUM_QUESTIONS, NUM_CONCEPTS)
        with pytest.raises(ValueError):
            multi_step_sweep(model, dataset, horizons=(0,))


def _grouped(records):
    grouped = {}
    for event in records:
        grouped.setdefault(event.student_id, []).append(event)
    return grouped
