"""OnlineTrainer: incremental fine-tuning determinism and mechanics."""

import pytest

from repro.core import RCKT, RCKTConfig
from repro.data import (SimulationConfig, StudentSimulator, build_dataset,
                        dataset_from_records)
from repro.online import OnlineTrainer, prequential_run
from repro.serve import InferenceEngine, RecordEvent, Service
from repro.utils.checkpoint import load_checkpoint

NUM_QUESTIONS = 20
NUM_CONCEPTS = 5


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    path = tmp_path_factory.mktemp("online") / "incumbent.npz"
    engine = InferenceEngine(RCKT(NUM_QUESTIONS, NUM_CONCEPTS,
                                  RCKTConfig(encoder="dkt", dim=8,
                                             layers=1, seed=0)))
    engine.save(path)
    return path


@pytest.fixture(scope="module")
def corpus():
    simulator = StudentSimulator(SimulationConfig(
        num_students=14, num_questions=NUM_QUESTIONS,
        num_concepts=NUM_CONCEPTS, sequence_length=(8, 14)), seed=17)
    sequences = simulator.simulate()
    records = [RecordEvent(f"s-{sequence.student_id}",
                           interaction.question_id, interaction.correct,
                           interaction.concept_ids)
               for sequence in sequences for interaction in sequence]
    dataset = build_dataset("corpus", sequences, NUM_QUESTIONS,
                            NUM_CONCEPTS)
    return records, dataset


def state_bytes(model) -> dict:
    return {name: array.tobytes()
            for name, array in model.state_dict().items()}


def test_two_runs_same_seed_are_byte_identical(checkpoint, corpus,
                                               tmp_path):
    """The determinism contract: same checkpoint + seed + round order
    => byte-identical weights, checkpoints, and prequential metrics."""
    records, dataset = corpus
    outputs = []
    for run in range(2):
        with OnlineTrainer(checkpoint, epochs=2, seed=77) as trainer:
            trainer.fine_tune(dataset)
            trainer.fine_tune(dataset)           # second round, same data
            path = tmp_path / f"run-{run}.npz"
            trainer.save(path)
            outputs.append((state_bytes(trainer.model), path))
    assert outputs[0][0] == outputs[1][0]
    first_state, _ = load_checkpoint(outputs[0][1])
    second_state, _ = load_checkpoint(outputs[1][1])
    assert sorted(first_state) == sorted(second_state)
    for name in first_state:
        assert first_state[name].tobytes() == second_state[name].tobytes()

    # ... and the prequential trajectories over the refreshed
    # checkpoints are identical, point for point.
    trajectories = []
    for _, path in outputs:
        service = Service.from_checkpoint(path)
        try:
            trajectories.append(
                prequential_run(service, records,
                                checkpoint_every=30).to_dict())
        finally:
            service.close()
    assert trajectories[0] == trajectories[1]


def test_different_seeds_diverge(checkpoint, corpus):
    records, dataset = corpus
    states = []
    for seed in (1, 2):
        with OnlineTrainer(checkpoint, seed=seed) as trainer:
            trainer.fine_tune(dataset)
            states.append(state_bytes(trainer.model))
    assert states[0] != states[1]


def test_rounds_advance_and_optimizer_state_persists(checkpoint, corpus):
    _, dataset = corpus
    with OnlineTrainer(checkpoint, seed=5) as trainer:
        first = trainer.fine_tune(dataset)
        after_one = state_bytes(trainer.model)
        second = trainer.fine_tune(dataset)
        assert (first["round"], second["round"]) == (0, 1)
        assert first["batches"] > 0 and second["batches"] > 0
        assert first["mean_loss"] is not None
        # round 2 keeps training (weights move again from round 1's)
        assert state_bytes(trainer.model) != after_one
        # serving-ready afterwards
        assert not trainer.model.training


def test_fine_tune_accepts_journal_shaped_records(checkpoint, corpus):
    records, _ = corpus
    with OnlineTrainer(checkpoint, seed=3) as trainer:
        dataset = dataset_from_records(records, trainer.num_questions,
                                       trainer.num_concepts)
        summary = trainer.fine_tune(dataset)
        assert summary["sequences"] == len(dataset) > 0
        assert summary["batches"] > 0


def test_empty_round_is_a_no_op(checkpoint):
    empty = build_dataset("empty", [], NUM_QUESTIONS, NUM_CONCEPTS)
    with OnlineTrainer(checkpoint, seed=3) as trainer:
        before = state_bytes(trainer.model)
        summary = trainer.fine_tune(empty)
        assert summary["batches"] == 0
        assert summary["mean_loss"] is None
        assert state_bytes(trainer.model) == before


def test_config_overrides_and_validation(checkpoint):
    with OnlineTrainer(checkpoint, lr=1e-4, batch_size=8,
                       targets_per_sequence=1, seed=9) as trainer:
        assert trainer.lr == 1e-4
        assert trainer.batch_size == 8
        assert trainer.targets_per_sequence == 1
        assert trainer.optimizer.lr == 1e-4
    with pytest.raises(ValueError):
        OnlineTrainer(checkpoint, epochs=0)
