"""Reproduces Table I of the paper exactly.

The paper's worked example: six questions, responses (✓ × ✓ ✓ ×) with q6 as
the target.  Plugging the table's probabilities into the influence
computation must give Δ+ = 0.9, Δ- = 1.0 and the final prediction
"incorrect" (0.9 < 1.0) — the same inference illustrated in Fig. 1.
"""

import numpy as np

from repro.core import build_variants, compute_influences
from repro.tensor import Tensor

# Table I's probability grids (positions 0..5; the 6th is the target q6).
#   Assuming r6 = 1: f_{(t+1)+ -> i+} for correct history (q1, q3, q4)
F_PLUS = [0.6, np.nan, 0.7, 0.6, np.nan, np.nan]
#   CF after flipping target to incorrect: cf_{(t+1)- -> i+}
CF_MINUS = [0.5, np.nan, 0.2, 0.3, np.nan, np.nan]
#   Assuming r6 = 0: f_{(t+1)- -> i-} = P(r_i = 0 | ...) for q2, q5
F_MINUS_INCORRECT = [np.nan, 0.6, np.nan, np.nan, 0.9, np.nan]
#   cf_{(t+1)+ -> i-} = P(r_i = 0) after flipping target to correct
CF_PLUS_INCORRECT = [np.nan, 0.4, np.nan, np.nan, 0.1, np.nan]

RESPONSES = np.array([[1, 0, 1, 1, 0, 1]])  # ✓ × ✓ ✓ × + target


def build_probability_grids():
    """Convert Table I numbers into the P(correct) grids the code uses.

    The table reports incorrect-side numbers as P(r=0); the implementation
    works uniformly in P(r=1), so those entries are complemented.  Unused
    cells can hold anything (they are masked out); we use 0.5.
    """
    def grid(values, complement=False):
        array = np.array(values, dtype=np.float64)
        array = np.where(np.isnan(array), 0.5,
                         1.0 - array if complement else array)
        return Tensor(array[None, :])

    return {
        "f_plus": grid(F_PLUS),
        "cf_minus": grid(CF_MINUS),
        "f_minus": grid(F_MINUS_INCORRECT, complement=True),
        "cf_plus": grid(CF_PLUS_INCORRECT, complement=True),
    }


class TestTable1:
    def setup_method(self):
        mask = np.ones((1, 6), dtype=bool)
        self.variants = build_variants(RESPONSES, mask, np.array([5]))
        self.influence = compute_influences(build_probability_grids(),
                                            self.variants)

    def test_correct_influences_match_table(self):
        deltas = self.influence.correct_deltas.data[0]
        # Δ_(t+1)+→i+ rows of Table I: 0.1, 0.5, 0.3 at q1, q3, q4.
        assert np.isclose(deltas[0], 0.1)
        assert np.isclose(deltas[2], 0.5)
        assert np.isclose(deltas[3], 0.3)
        assert deltas[1] == 0.0 and deltas[4] == 0.0 and deltas[5] == 0.0

    def test_incorrect_influences_match_table(self):
        deltas = self.influence.incorrect_deltas.data[0]
        # Δ_(t+1)-→i- rows: 0.2 at q2, 0.8 at q5.
        assert np.isclose(deltas[1], 0.2)
        assert np.isclose(deltas[4], 0.8)
        assert deltas[0] == 0.0 and deltas[2] == 0.0

    def test_totals(self):
        assert np.isclose(self.influence.delta_plus.data[0], 0.9)
        assert np.isclose(self.influence.delta_minus.data[0], 1.0)

    def test_final_prediction_is_incorrect(self):
        """0.9 vs 1.0 — the student is predicted to answer q6 wrong."""
        assert self.influence.decision()[0] == 0

    def test_score_below_half(self):
        expected = (0.9 - 1.0) / (2 * 5) + 0.5
        assert np.isclose(self.influence.scores[0], expected)

    def test_history_length(self):
        assert self.influence.history_lengths[0] == 5

    def test_counterfactual_rows_match_table_masks(self):
        """Table I's CF rows: CF_(t+1)- masks ✓ and keeps ×, and vice versa."""
        from repro.core import MASKED
        cf_minus = self.variants.variants["cf_minus"][0]
        assert cf_minus.tolist() == [MASKED, 0, MASKED, MASKED, 0, 0]
        cf_plus = self.variants.variants["cf_plus"][0]
        assert cf_plus.tolist() == [1, MASKED, 1, 1, MASKED, 1]
