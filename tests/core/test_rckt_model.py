"""RCKT model integration: training signal, prediction, ablations, exact path."""

import numpy as np
import pytest

from repro.core import RCKT, RCKTConfig, evaluate_rckt, fit_rckt
from repro.data import collate, make_assist09, train_test_split


def tiny_config(**overrides):
    defaults = dict(encoder="dkt", dim=8, layers=1, epochs=2, batch_size=16,
                    lr=3e-3, targets_per_sequence=2, seed=0)
    defaults.update(overrides)
    return RCKTConfig(**defaults)


@pytest.fixture(scope="module")
def dataset():
    return make_assist09(scale=0.12, seed=3)


@pytest.fixture(scope="module")
def fold(dataset):
    return train_test_split(dataset, seed=0)


@pytest.fixture(scope="module")
def trained(dataset, fold):
    model = RCKT(dataset.num_questions, dataset.num_concepts, tiny_config())
    fit_rckt(model, fold.train, eval_stride=3)
    return model


class TestTraining:
    def test_loss_decreases(self, dataset, fold):
        model = RCKT(dataset.num_questions, dataset.num_concepts,
                     tiny_config(epochs=4))
        result = fit_rckt(model, fold.train)
        assert result.train_losses[-1] < result.train_losses[0]

    def test_early_stopping_restores_best(self, dataset, fold):
        model = RCKT(dataset.num_questions, dataset.num_concepts,
                     tiny_config(epochs=3))
        result = fit_rckt(model, fold.train, fold.validation, eval_stride=3)
        assert result.best_epoch >= 0
        assert result.best_val_auc > 0

    def test_loss_is_finite(self, dataset, fold, trained):
        batch = collate([fold.train[0]])
        cols = np.array([len(fold.train[0]) - 1])
        loss = trained.loss(batch, cols)
        assert np.isfinite(loss.item())


class TestPrediction:
    def test_scores_in_unit_interval(self, fold, trained):
        labels, scores = trained.predict_dataset(fold.test, stride=3)
        assert len(labels) == len(scores) > 0
        assert np.all((scores >= 0) & (scores <= 1))

    def test_beats_chance_after_training(self, fold, trained):
        metrics = evaluate_rckt(trained, fold.test, stride=2)
        assert metrics["auc"] > 0.5

    def test_stride_subsamples(self, fold, trained):
        full_labels, _ = trained.predict_dataset(fold.test, stride=1)
        sub_labels, _ = trained.predict_dataset(fold.test, stride=3)
        assert len(sub_labels) < len(full_labels)

    def test_deterministic_inference(self, fold, trained):
        batch = collate([fold.test[0]])
        cols = np.array([len(fold.test[0]) - 1])
        a = trained.predict_scores(batch, cols)
        b = trained.predict_scores(batch, cols)
        assert np.array_equal(a, b)

    def test_influences_signs_mostly_constrained(self, fold, trained):
        """After training with L*, most influences should be >= 0."""
        batch = collate([fold.test[0]])
        cols = np.array([len(fold.test[0]) - 1])
        from repro.tensor import no_grad
        trained.eval()
        with no_grad():
            influence = trained.influences(batch, cols)
        deltas = np.concatenate([influence.correct_deltas.data.ravel(),
                                 influence.incorrect_deltas.data.ravel()])
        negative_mass = np.abs(deltas[deltas < 0]).sum()
        total_mass = np.abs(deltas).sum() or 1.0
        assert negative_mass / total_mass < 0.5


class TestExactPath:
    def test_exact_matches_history_partition(self, fold, trained):
        sequence = fold.test[0][:8]
        result = trained.exact_influences(sequence)
        history = len(sequence) - 1
        covered = result.correct_positions | result.incorrect_positions
        assert covered[:history].all()
        assert not covered[history:].any()

    def test_exact_totals_consistent(self, fold, trained):
        sequence = fold.test[0][:8]
        result = trained.exact_influences(sequence)
        assert np.isclose(result.delta_plus,
                          result.deltas[result.correct_positions].sum())
        assert np.isclose(result.delta_minus,
                          result.deltas[result.incorrect_positions].sum())

    def test_exact_needs_history(self, trained, fold):
        with pytest.raises(ValueError):
            trained.exact_influences(fold.test[0][:1])


class TestAblations:
    def test_joint_flag_forces_lambda_zero(self):
        config = RCKTConfig(use_joint=False, lambda_balance=0.5)
        assert config.lambda_balance == 0.0

    def test_mono_ablation_changes_loss(self, dataset, fold):
        batch = collate([fold.train[0]])
        cols = np.array([len(fold.train[0]) - 1])
        full = RCKT(dataset.num_questions, dataset.num_concepts,
                    tiny_config(seed=7))
        nomono = RCKT(dataset.num_questions, dataset.num_concepts,
                      tiny_config(seed=7, use_monotonicity=False))
        nomono.load_state_dict(full.state_dict())
        assert not np.isclose(full.loss(batch, cols).item(),
                              nomono.loss(batch, cols).item())

    def test_con_ablation_never_larger(self, dataset, fold):
        """Dropping the hinge term can only keep or lower the loss."""
        batch = collate([fold.train[0]])
        cols = np.array([len(fold.train[0]) - 1])
        full = RCKT(dataset.num_questions, dataset.num_concepts,
                    tiny_config(seed=9))
        nocon = RCKT(dataset.num_questions, dataset.num_concepts,
                     tiny_config(seed=9, use_constraint=False))
        nocon.load_state_dict(full.state_dict())
        assert nocon.loss(batch, cols).item() <= full.loss(batch, cols).item() + 1e-12


class TestStatePersistence:
    def test_state_dict_roundtrip(self, dataset, fold, trained):
        clone = RCKT(dataset.num_questions, dataset.num_concepts,
                     tiny_config())
        clone.load_state_dict(trained.state_dict())
        batch = collate([fold.test[0]])
        cols = np.array([len(fold.test[0]) - 1])
        assert np.allclose(clone.predict_scores(batch, cols),
                           trained.predict_scores(batch, cols))
