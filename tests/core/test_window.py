"""Sliding-window scoring: exact truncation semantics in the core.

Windowed scoring is *defined* as full recompute on the truncated window
(re-based to position 0), so every test here compares the windowed fast
paths against literal truncate-and-recollate references.  The anchoring
function ``window_start`` is pure in the history length, which is what
lets serving caches, uncached serving, and these offline references all
agree on the same context.
"""

import numpy as np
import pytest

from repro.core import ENCODERS, RCKT, RCKTConfig, score_batch_targets
from repro.core.masking import check_window, window_start, window_starts
from repro.core.multi_target import column_banded_chunks
from repro.data import (SimulationConfig, StudentSimulator, build_dataset,
                        collate, expand_windowed_targets)
from repro.tensor import no_grad

ATOL = 1e-10


def make_dataset(num_students=6, lengths=(30, 60), seed=3):
    config = SimulationConfig(num_students=num_students, num_questions=40,
                              num_concepts=8, sequence_length=lengths)
    simulator = StudentSimulator(config, seed=seed)
    return build_dataset("window", simulator.simulate(seed=seed + 1),
                         config.num_questions, config.num_concepts,
                         min_length=2)


def make_model(encoder, dataset, **overrides):
    settings = dict(dim=8, layers=2, seed=1)
    settings.update(overrides)
    return RCKT(dataset.num_questions, dataset.num_concepts,
                RCKTConfig(encoder=encoder, **settings))


class TestWindowStart:
    def test_short_histories_are_not_windowed(self):
        assert window_start(0, 16) == 0
        assert window_start(16, 16) == 0
        assert window_start(100, None) == 0

    def test_hop_one_is_exact_last_window(self):
        for length in range(17, 80):
            start = window_start(length, 16, hop=1)
            assert length - start == 16

    def test_context_length_breathes_within_hop(self):
        window, hop = 16, 5
        for length in range(1, 200):
            start = window_start(length, window, hop)
            context = length - start
            assert 0 < context <= window
            if length > window:
                assert context > window - hop
                assert start % hop == 0

    def test_vectorized_matches_scalar(self):
        lengths = np.arange(0, 120)
        for window, hop in ((16, 1), (16, 5), (32, 8)):
            vectorized = window_starts(lengths, window, hop)
            scalar = [window_start(int(n), window, hop) for n in lengths]
            np.testing.assert_array_equal(vectorized, scalar)

    def test_invalid_pairs_rejected(self):
        with pytest.raises(ValueError):
            check_window(1, 1)
        with pytest.raises(ValueError):
            check_window(8, 0)
        with pytest.raises(ValueError):
            check_window(8, 8)
        with pytest.raises(ValueError):
            window_start(4, 1)
        with pytest.raises(ValueError):
            window_starts(np.array([3]), 8, 9)


class TestExpandWindowedTargets:
    def test_matches_manual_slice(self):
        dataset = make_dataset()
        sequences = list(dataset)
        base = collate(sequences)
        cols = np.array([len(s) - 1 for s in sequences])
        starts = window_starts(cols, 10, 3)
        rebased, new_cols = expand_windowed_targets(
            base, np.arange(len(cols)), cols, starts)
        np.testing.assert_array_equal(new_cols, cols - starts)
        for row, (sequence, col, start) in enumerate(
                zip(sequences, cols, starts)):
            manual = collate([sequence[start:col + 1]])
            width = col - start + 1
            np.testing.assert_array_equal(
                rebased.questions[row, :width], manual.questions[0])
            np.testing.assert_array_equal(
                rebased.responses[row, :width], manual.responses[0])
            np.testing.assert_array_equal(
                rebased.concept_counts[row, :width],
                manual.concept_counts[0])
            assert rebased.mask[row, :width].all()
            assert not rebased.mask[row, width:].any()

    def test_validates_inputs(self):
        base = collate(list(make_dataset(num_students=2)))
        with pytest.raises(ValueError):
            expand_windowed_targets(base, np.array([0]), np.array([5]),
                                    np.array([6]))
        with pytest.raises(ValueError):
            expand_windowed_targets(base, np.array([0]), np.array([5]),
                                    np.array([-1]))
        with pytest.raises(ValueError):
            expand_windowed_targets(base, np.array([0, 1]), np.array([5]),
                                    np.array([0]))


@pytest.mark.parametrize("encoder", ENCODERS)
class TestWindowedScoreParity:
    """Windowed fast paths == truncate-and-recollate references."""

    def truncated_reference(self, model, sequence, col, window, hop):
        start = window_start(int(col), window, hop)
        batch = collate([sequence[start:col + 1]])
        with no_grad():
            return score_batch_targets(model, batch,
                                       np.array([col - start]))[0]

    def test_score_batch_targets_window(self, encoder):
        dataset = make_dataset()
        sequences = list(dataset)
        model = make_model(encoder, dataset)
        model.eval()
        base = collate(sequences)
        cols = np.array([len(s) - 1 for s in sequences])
        window, hop = 12, 4
        with no_grad():
            windowed = score_batch_targets(model, base, cols,
                                           window=window, window_hop=hop)
        reference = np.array([
            self.truncated_reference(model, s, c, window, hop)
            for s, c in zip(sequences, cols)
        ])
        np.testing.assert_allclose(windowed, reference, atol=ATOL, rtol=0)

    def test_predict_dataset_window(self, encoder):
        dataset = make_dataset(num_students=4, lengths=(20, 40))
        model = make_model(encoder, dataset, layers=1)
        window, hop = 12, 4
        labels, scores = model.predict_dataset(dataset, stride=7,
                                               window=window,
                                               window_hop=hop)
        model.eval()
        ordered = sorted((s for s in dataset
                          if len(s) > model.config.min_history), key=len)
        specs = [(sequence, col) for sequence in ordered
                 for col in range(model.config.min_history,
                                  len(sequence), 7)]
        # The fast path scores each group's targets in stable
        # column-sorted order (one group here: batch_size default 32).
        specs.sort(key=lambda spec: spec[1])
        expected_labels = [sequence[col].correct for sequence, col in specs]
        expected_scores = [self.truncated_reference(model, sequence, col,
                                                    window, hop)
                           for sequence, col in specs]
        np.testing.assert_array_equal(labels, expected_labels)
        np.testing.assert_allclose(scores, expected_scores,
                                   atol=ATOL, rtol=0)


def test_window_none_is_bit_identical_to_unwindowed():
    dataset = make_dataset(num_students=4)
    model = make_model("dkt", dataset)
    plain = model.predict_dataset(dataset, stride=5)
    windowed_off = model.predict_dataset(dataset, stride=5, window=None)
    np.testing.assert_array_equal(plain[1], windowed_off[1])
    # A window wider than every history is also a no-op.
    wide = model.predict_dataset(dataset, stride=5, window=512)
    np.testing.assert_array_equal(plain[1], wide[1])


def test_legacy_path_rejects_window():
    dataset = make_dataset(num_students=2)
    model = make_model("dkt", dataset)
    with pytest.raises(ValueError):
        model.predict_dataset(dataset, legacy=True, window=16)


def test_chunking_respects_window_boundaries():
    # Once windowed targets are re-based, every chunk's width is bounded
    # by the window: no chunk mixes a windowed target with a far wider
    # full-history one.
    cols = np.array([3, 200, 450, 7, 900, 11, 300])
    window, hop = 16, 4
    starts = window_starts(cols, window, hop)
    rebased = cols - starts
    assert rebased.max() <= window
    for chunk in column_banded_chunks(rebased, target_batch=4):
        width = rebased[chunk].max() + 1
        assert width <= window + 1
