"""Property tests for ``compute_influences`` (Sec. IV-C, Eq. 12-13).

The module documents two invariants the rest of the system leans on:

* all three ``SCORE_NORMALIZATIONS`` are odd monotone transforms of the
  gap ``Δ+ − Δ−``, so the Eq. 13 *decision* is identical under each;
* rows with no history carry no influence evidence and score exactly 0.5
  regardless of the variant probabilities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_variants, compute_influences
from repro.core.influence import SCORE_NORMALIZATIONS
from repro.core.masking import COUNTERFACTUAL_VARIANTS
from repro.tensor import Tensor


def random_case(seed, batch=5, length=9, allow_empty_history=False):
    rng = np.random.default_rng(seed)
    responses = rng.integers(0, 2, size=(batch, length))
    mask = np.ones((batch, length), dtype=bool)
    low = 0 if allow_empty_history else 1
    targets = rng.integers(low, length, size=batch)
    variants = build_variants(responses, mask, targets)
    probabilities = {
        name: Tensor(rng.uniform(0.0, 1.0, size=(batch, length)))
        for name in COUNTERFACTUAL_VARIANTS
    }
    return probabilities, variants


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_normalizations_share_eq13_decisions(seed):
    probabilities, variants = random_case(seed)
    decisions = [
        compute_influences(probabilities, variants,
                           normalization=norm).decision()
        for norm in SCORE_NORMALIZATIONS
    ]
    for other in decisions[1:]:
        assert np.array_equal(decisions[0], other)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_decision_is_gap_sign(seed):
    """Eq. 13: predict correct iff Δ+ − Δ− >= 0, under every scoring."""
    probabilities, variants = random_case(seed)
    for norm in SCORE_NORMALIZATIONS:
        influence = compute_influences(probabilities, variants,
                                       normalization=norm)
        gap = influence.delta_plus.data - influence.delta_minus.data
        assert np.array_equal(influence.decision(),
                              (gap >= 0).astype(np.int64))


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_empty_history_scores_exactly_half(seed):
    probabilities, variants = random_case(seed, allow_empty_history=True)
    empty = variants.history_mask.sum(axis=1) == 0
    for norm in SCORE_NORMALIZATIONS:
        influence = compute_influences(probabilities, variants,
                                       normalization=norm)
        assert np.all(influence.scores[empty] == 0.5)
        assert np.all(influence.history_lengths[empty] == 0)


def test_all_empty_batch_is_neutral():
    """Targets at column 0 everywhere: pure 0.5 output, decision 1."""
    rng = np.random.default_rng(0)
    responses = rng.integers(0, 2, size=(4, 6))
    variants = build_variants(responses, np.ones((4, 6), dtype=bool),
                              np.zeros(4, dtype=np.int64))
    probabilities = {name: Tensor(rng.uniform(size=(4, 6)))
                     for name in COUNTERFACTUAL_VARIANTS}
    influence = compute_influences(probabilities, variants)
    assert np.all(influence.scores == 0.5)
    assert np.all(influence.decision() == 1)


def test_unknown_normalization_rejected():
    probabilities, variants = random_case(1)
    with pytest.raises(ValueError, match="normalization"):
        compute_influences(probabilities, variants, normalization="bogus")


def test_missing_variant_rejected():
    probabilities, variants = random_case(2)
    del probabilities["cf_plus"]
    with pytest.raises(KeyError, match="cf_plus"):
        compute_influences(probabilities, variants)
