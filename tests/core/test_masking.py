"""Counterfactual sequence construction semantics (Eq. 3-6, 19)."""

import numpy as np
import pytest

from repro.core import MASKED, build_exact_counterfactual, build_variants


def simple_batch():
    """One row: responses 1,0,1,1,0 then target at col 5 (like Fig. 1/3)."""
    responses = np.array([[1, 0, 1, 1, 0, 1]])
    mask = np.ones((1, 6), dtype=bool)
    targets = np.array([5])
    return responses, mask, targets


class TestBuildVariants:
    def test_f_plus_keeps_history_sets_target_correct(self):
        responses, mask, targets = simple_batch()
        vs = build_variants(responses, mask, targets)
        assert vs.variants["f_plus"][0].tolist() == [1, 0, 1, 1, 0, 1]

    def test_f_minus_only_flips_target(self):
        responses, mask, targets = simple_batch()
        vs = build_variants(responses, mask, targets)
        assert vs.variants["f_minus"][0].tolist() == [1, 0, 1, 1, 0, 0]

    def test_cf_minus_masks_correct_retains_incorrect(self):
        """Flipping the target down: correct history is unreliable (masked),
        incorrect history is retained (monotonicity, Sec. IV-B)."""
        responses, mask, targets = simple_batch()
        vs = build_variants(responses, mask, targets)
        assert vs.variants["cf_minus"][0].tolist() == \
            [MASKED, 0, MASKED, MASKED, 0, 0]

    def test_cf_plus_masks_incorrect_retains_correct(self):
        responses, mask, targets = simple_batch()
        vs = build_variants(responses, mask, targets)
        assert vs.variants["cf_plus"][0].tolist() == \
            [1, MASKED, 1, 1, MASKED, 1]

    def test_factual_masks_target_only(self):
        responses, mask, targets = simple_batch()
        vs = build_variants(responses, mask, targets)
        assert vs.variants["factual"][0].tolist() == [1, 0, 1, 1, 0, MASKED]

    def test_m_plus_hides_incorrect_history(self):
        responses, mask, targets = simple_batch()
        vs = build_variants(responses, mask, targets)
        assert vs.variants["m_plus"][0].tolist() == \
            [1, MASKED, 1, 1, MASKED, MASKED]

    def test_m_minus_hides_correct_history(self):
        responses, mask, targets = simple_batch()
        vs = build_variants(responses, mask, targets)
        assert vs.variants["m_minus"][0].tolist() == \
            [MASKED, 0, MASKED, MASKED, 0, MASKED]

    def test_mono_ablation_keeps_history_factual(self):
        responses, mask, targets = simple_batch()
        vs = build_variants(responses, mask, targets, use_monotonicity=False)
        assert vs.variants["cf_minus"][0].tolist() == [1, 0, 1, 1, 0, 0]
        assert vs.variants["cf_plus"][0].tolist() == [1, 0, 1, 1, 0, 1]

    def test_masks_partition_history(self):
        responses, mask, targets = simple_batch()
        vs = build_variants(responses, mask, targets)
        assert vs.history_mask[0].tolist() == [True] * 5 + [False]
        assert vs.correct_mask[0].tolist() == \
            [True, False, True, True, False, False]
        assert vs.incorrect_mask[0].tolist() == \
            [False, True, False, False, True, False]

    def test_padding_excluded_from_history(self):
        responses = np.array([[1, 0, 1, 0, 0, 0]])
        mask = np.array([[True, True, True, True, False, False]])
        vs = build_variants(responses, mask, np.array([3]))
        assert vs.history_mask[0].tolist() == [True, True, True] + [False] * 3

    def test_stacked_order(self):
        responses, mask, targets = simple_batch()
        vs = build_variants(responses, mask, targets)
        stacked = vs.stacked(("f_plus", "f_minus"))
        assert stacked.shape == (2, 6)
        assert stacked[0, 5] == 1 and stacked[1, 5] == 0

    def test_original_responses_untouched(self):
        responses, mask, targets = simple_batch()
        copy = responses.copy()
        build_variants(responses, mask, targets)
        assert np.array_equal(responses, copy)

    def test_target_out_of_range_raises(self):
        responses, mask, _ = simple_batch()
        with pytest.raises(ValueError):
            build_variants(responses, mask, np.array([6]))

    def test_target_on_padding_raises(self):
        responses = np.array([[1, 0, 0]])
        mask = np.array([[True, True, False]])
        with pytest.raises(ValueError):
            build_variants(responses, mask, np.array([2]))


class TestExactCounterfactual:
    def test_flip_correct_masks_other_correct(self):
        """Eq. 4: CF_{t,i-} retains incorrect, masks other correct."""
        responses = np.array([1, 0, 1, 1, 0, 1])
        mask = np.ones(6, dtype=bool)
        row = build_exact_counterfactual(responses, mask, target_col=5,
                                         flip_col=2)
        assert row.tolist() == [MASKED, 0, 0, MASKED, 0, MASKED]

    def test_flip_incorrect_masks_other_incorrect(self):
        responses = np.array([1, 0, 1, 1, 0, 1])
        mask = np.ones(6, dtype=bool)
        row = build_exact_counterfactual(responses, mask, target_col=5,
                                         flip_col=1)
        assert row.tolist() == [1, 1, 1, 1, MASKED, MASKED]

    def test_without_monotonicity_only_flips(self):
        responses = np.array([1, 0, 1, 1, 0, 1])
        mask = np.ones(6, dtype=bool)
        row = build_exact_counterfactual(responses, mask, target_col=5,
                                         flip_col=2, use_monotonicity=False)
        assert row.tolist() == [1, 0, 0, 1, 0, MASKED]

    def test_flip_must_precede_target(self):
        responses = np.array([1, 0, 1])
        with pytest.raises(ValueError):
            build_exact_counterfactual(responses, np.ones(3, bool), 1, 2)
