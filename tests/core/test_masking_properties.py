"""Hypothesis property tests for counterfactual sequence construction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MASKED, VARIANT_ORDER, build_variants

response_rows = st.lists(st.integers(0, 1), min_size=2, max_size=12)


def make_inputs(row, target_offset):
    responses = np.array([row])
    mask = np.ones((1, len(row)), dtype=bool)
    target = np.array([1 + target_offset % (len(row) - 1)])
    return responses, mask, target


@settings(max_examples=50, deadline=None)
@given(response_rows, st.integers(0, 100))
def test_variants_only_touch_history_and_target(row, offset):
    """Every variant differs from the factual row only at history positions
    (by masking) or at the target (by assumption/intervention)."""
    responses, mask, target = make_inputs(row, offset)
    vs = build_variants(responses, mask, target)
    t = target[0]
    for name in VARIANT_ORDER:
        variant = vs.variants[name][0]
        for i in range(len(row)):
            if i == t:
                assert variant[i] in (0, 1, MASKED)
            elif i < t:
                # History: either untouched or masked, never flipped.
                assert variant[i] in (row[i], MASKED)
            else:
                # Beyond the target (none here since target is inside the
                # row, but padding-safe check): untouched.
                assert variant[i] == row[i]


@settings(max_examples=50, deadline=None)
@given(response_rows, st.integers(0, 100))
def test_masks_partition_history(row, offset):
    responses, mask, target = make_inputs(row, offset)
    vs = build_variants(responses, mask, target)
    union = vs.correct_mask | vs.incorrect_mask
    assert np.array_equal(union, vs.history_mask)
    assert not (vs.correct_mask & vs.incorrect_mask).any()


@settings(max_examples=50, deadline=None)
@given(response_rows, st.integers(0, 100))
def test_cf_minus_retains_exactly_the_incorrect(row, offset):
    """Monotonicity retention: after flipping the target down, an observed
    history response survives iff it was incorrect."""
    responses, mask, target = make_inputs(row, offset)
    vs = build_variants(responses, mask, target)
    t = target[0]
    cf = vs.variants["cf_minus"][0]
    for i in range(t):
        if row[i] == 0:
            assert cf[i] == 0
        else:
            assert cf[i] == MASKED


@settings(max_examples=50, deadline=None)
@given(response_rows, st.integers(0, 100))
def test_mono_ablation_is_identity_outside_target(row, offset):
    responses, mask, target = make_inputs(row, offset)
    vs = build_variants(responses, mask, target, use_monotonicity=False)
    t = target[0]
    for name in ("cf_minus", "cf_plus"):
        variant = vs.variants[name][0]
        assert np.array_equal(variant[:t], responses[0, :t])


@settings(max_examples=50, deadline=None)
@given(response_rows, st.integers(0, 100))
def test_masked_sides_are_complementary(row, offset):
    """m_plus hides exactly the incorrect history; m_minus the correct."""
    responses, mask, target = make_inputs(row, offset)
    vs = build_variants(responses, mask, target)
    t = target[0]
    m_plus = vs.variants["m_plus"][0]
    m_minus = vs.variants["m_minus"][0]
    for i in range(t):
        hidden_in_plus = m_plus[i] == MASKED
        hidden_in_minus = m_minus[i] == MASKED
        assert hidden_in_plus == (row[i] == 0)
        assert hidden_in_minus == (row[i] == 1)
