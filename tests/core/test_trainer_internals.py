"""RCKT trainer internals and score-normalization options."""

import numpy as np
import pytest

from repro.core import (RCKTConfig, build_variants, compute_influences)
from repro.core.trainer import _bucketed_batches, _sample_targets
from repro.data import Interaction, KTDataset, StudentSequence
from repro.tensor import Tensor


def make_dataset(pattern_per_student):
    sequences = []
    for sid, pattern in enumerate(pattern_per_student):
        seq = StudentSequence(sid)
        for i, correct in enumerate(pattern):
            seq.append(Interaction(i + 1, correct, (1,), i))
        sequences.append(seq)
    return KTDataset("toy", sequences, 60, 2)


class TestTargetSampling:
    def test_respects_min_history(self):
        dataset = make_dataset([[1, 0, 1, 0, 1]])
        rng = np.random.default_rng(0)
        specs = _sample_targets(dataset, per_sequence=10, min_history=2,
                                rng=rng, balanced=False)
        assert all(col >= 2 for _, col in specs)

    def test_count_capped_by_candidates(self):
        dataset = make_dataset([[1, 0, 1]])
        rng = np.random.default_rng(0)
        specs = _sample_targets(dataset, per_sequence=99, min_history=1,
                                rng=rng, balanced=False)
        assert len(specs) == 2  # positions 1 and 2

    def test_balanced_takes_both_labels(self):
        # 9 correct, 1 incorrect: balanced sampling must include the
        # single incorrect position whenever 2+ targets are drawn.
        pattern = [1, 1, 1, 1, 0, 1, 1, 1, 1, 1]
        dataset = make_dataset([pattern])
        rng = np.random.default_rng(1)
        for _ in range(5):
            specs = _sample_targets(dataset, per_sequence=2, min_history=1,
                                    rng=rng, balanced=True)
            labels = {pattern[col] for _, col in specs}
            assert 0 in labels

    def test_unbalanced_often_misses_minority(self):
        pattern = [1] * 19 + [0]
        dataset = make_dataset([pattern * 1])
        rng = np.random.default_rng(2)
        hits = 0
        for _ in range(20):
            specs = _sample_targets(dataset, per_sequence=1, min_history=1,
                                    rng=rng, balanced=False)
            hits += any(pattern[col] == 0 for _, col in specs)
        assert hits < 10  # the minority is mostly missed without balancing

    def test_no_duplicate_targets_per_sequence(self):
        dataset = make_dataset([[1, 0] * 10])
        rng = np.random.default_rng(3)
        specs = _sample_targets(dataset, per_sequence=8, min_history=1,
                                rng=rng, balanced=True)
        cols = [col for _, col in specs]
        assert len(cols) == len(set(cols))


class TestBucketing:
    def test_batches_have_uniform_length(self):
        dataset = make_dataset([[1, 0, 1, 0, 1], [1, 0, 1], [0, 1, 1, 0]])
        rng = np.random.default_rng(0)
        specs = _sample_targets(dataset, per_sequence=2, min_history=1,
                                rng=rng, balanced=False)
        for batch, cols in _bucketed_batches(specs, batch_size=4, rng=rng):
            # Each batch holds prefixes of one exact length: no padding.
            assert batch.mask.all()
            assert np.all(cols == batch.length - 1)

    def test_all_specs_consumed(self):
        dataset = make_dataset([[1, 0, 1, 0], [0, 1, 1]])
        rng = np.random.default_rng(0)
        specs = _sample_targets(dataset, per_sequence=3, min_history=1,
                                rng=rng, balanced=False)
        total = sum(batch.batch_size
                    for batch, _ in _bucketed_batches(specs, 2, rng))
        assert total == len(specs)


class TestScoreNormalization:
    def _influence(self, normalization):
        responses = np.array([[1, 0, 1]])
        mask = np.ones((1, 3), dtype=bool)
        variants = build_variants(responses, mask, np.array([2]))
        probs = {"f_plus": Tensor(np.array([[0.9, 0.5, 0.5]])),
                 "cf_minus": Tensor(np.array([[0.3, 0.5, 0.5]])),
                 "f_minus": Tensor(np.array([[0.5, 0.4, 0.5]])),
                 "cf_plus": Tensor(np.array([[0.5, 0.6, 0.5]]))}
        return compute_influences(probs, variants,
                                  normalization=normalization)

    def test_t_normalization_value(self):
        influence = self._influence("t")
        # Δ+ = 0.6, Δ- = 0.2, t = 2 -> 0.4/4 + 0.5 = 0.6
        assert np.isclose(influence.scores[0], 0.6)

    def test_sum_normalization_value(self):
        influence = self._influence("sum")
        # 0.4 / 0.8 / 2 + 0.5 = 0.75
        assert np.isclose(influence.scores[0], 0.75, atol=1e-6)

    def test_raw_is_sigmoid_of_gap(self):
        influence = self._influence("raw")
        assert np.isclose(influence.scores[0],
                          1.0 / (1.0 + np.exp(-0.4)))

    def test_all_agree_on_decision(self):
        decisions = {self._influence(n).decision()[0]
                     for n in ("t", "sum", "raw")}
        assert decisions == {1}

    def test_unknown_normalization_rejected(self):
        with pytest.raises(ValueError):
            self._influence("zscore")

    def test_config_validates_normalization(self):
        with pytest.raises(ValueError):
            RCKTConfig(score_normalization="bogus")
