"""Golden parity: the multi-target fast path must reproduce the legacy
per-prefix ``predict_dataset`` scores exactly (1e-10) for all encoders.

The legacy path (kept as ``predict_dataset(legacy=True)``) collates one
exact-length prefix batch per target bucket; the fast path collates each
sequence once and shares forward encoder streams across targets.  Cui et
al.'s answer-bias study shows evaluation-protocol bugs silently corrupt
reported KT accuracy — hence exact parity tests, not eyeballing.
"""

import numpy as np
import pytest

from repro.core import ENCODERS, RCKT, RCKTConfig
from repro.core.multi_target import (MultiTargetContext, score_targets)
from repro.data import (SimulationConfig, StudentSimulator, build_dataset,
                        collate)
from repro.tensor import no_grad

ATOL = 1e-10


def make_dataset(num_students=8, lengths=(4, 12), seed=3):
    config = SimulationConfig(num_students=num_students, num_questions=40,
                              num_concepts=8, sequence_length=lengths)
    simulator = StudentSimulator(config, seed=seed)
    return build_dataset("parity", simulator.simulate(seed=seed + 1),
                         config.num_questions, config.num_concepts,
                         min_length=2)


def make_model(encoder, dataset, **overrides):
    settings = dict(dim=8, layers=2, seed=1)
    settings.update(overrides)
    config = RCKTConfig(encoder=encoder, **settings)
    return RCKT(dataset.num_questions, dataset.num_concepts, config)


def legacy_reference_scores(model, sequence, cols):
    """One exact-length prefix batch per target: the golden definition."""
    return np.array([
        model.predict_scores(collate([sequence[:col + 1]]),
                             np.array([col]))[0]
        for col in cols
    ])


@pytest.mark.parametrize("encoder", ENCODERS)
class TestTargetAlignedParity:
    """Score-by-score comparison keyed on (sequence, target column)."""

    def test_context_matches_prefix_scores(self, encoder):
        dataset = make_dataset()
        model = make_model(encoder, dataset)
        sequences = list(dataset)[:4]
        model.eval()
        with no_grad():
            base = collate(sequences)
            context = MultiTargetContext(model, base)
            for row, sequence in enumerate(sequences):
                cols = np.arange(1, len(sequence))
                fast = context.scores_for(np.full(len(cols), row), cols)
                golden = legacy_reference_scores(model, sequence, cols)
                np.testing.assert_allclose(fast, golden, rtol=0, atol=ATOL)

    def test_score_targets_matches_prefix_scores(self, encoder):
        dataset = make_dataset()
        model = make_model(encoder, dataset)
        sequences = list(dataset)
        cols = [len(s) - 1 for s in sequences]
        model.eval()
        with no_grad():
            fast = score_targets(model, sequences, cols, target_batch=3)
        golden = np.array([
            legacy_reference_scores(model, s, [c])[0]
            for s, c in zip(sequences, cols)
        ])
        np.testing.assert_allclose(fast, golden, rtol=0, atol=ATOL)

    def test_padded_target_rejected(self, encoder):
        dataset = make_dataset(num_students=3)
        model = make_model(encoder, dataset)
        sequences = sorted(dataset, key=len)
        model.eval()
        with no_grad():
            base = collate(sequences)
            context = MultiTargetContext(model, base)
            bad_col = np.array([base.length - 1])  # padding on shortest row
            if not base.mask[0, bad_col[0]]:
                with pytest.raises(ValueError, match="real response"):
                    context.scores_for(np.array([0]), bad_col)

    def test_mono_ablation_parity(self, encoder):
        """The -mono flag flows through the shared forward streams too."""
        dataset = make_dataset(num_students=4)
        model = make_model(encoder, dataset, use_monotonicity=False)
        sequence = list(dataset)[0]
        cols = np.arange(1, len(sequence))
        model.eval()
        with no_grad():
            context = MultiTargetContext(model, collate([sequence]))
            fast = context.scores_for(np.zeros(len(cols), dtype=int), cols)
        golden = legacy_reference_scores(model, sequence, cols)
        np.testing.assert_allclose(fast, golden, rtol=0, atol=ATOL)


@pytest.mark.parametrize("encoder", ENCODERS)
def test_predict_dataset_paths_agree(encoder):
    """End to end: legacy and fast sweeps produce the same evaluation."""
    dataset = make_dataset()
    model = make_model(encoder, dataset)
    legacy_labels, legacy_scores = model.predict_dataset(dataset,
                                                         legacy=True)
    fast_labels, fast_scores = model.predict_dataset(dataset,
                                                     target_batch=7)
    assert len(legacy_scores) == len(fast_scores)
    # The paths order targets differently (length buckets vs sorted
    # groups); compare the (label, score) multisets.
    legacy_pairs = np.sort(legacy_labels + 1j * legacy_scores)
    fast_pairs = np.sort(fast_labels + 1j * fast_scores)
    np.testing.assert_allclose(fast_pairs.real, legacy_pairs.real,
                               rtol=0, atol=0)
    np.testing.assert_allclose(fast_pairs.imag, legacy_pairs.imag,
                               rtol=0, atol=ATOL)


def test_predict_dataset_stride_and_empty():
    dataset = make_dataset(num_students=4)
    model = make_model("dkt", dataset)
    legacy = model.predict_dataset(dataset, stride=3, legacy=True)
    fast = model.predict_dataset(dataset, stride=3)
    assert len(legacy[1]) == len(fast[1])
    np.testing.assert_allclose(np.sort(fast[1]), np.sort(legacy[1]),
                               rtol=0, atol=ATOL)
    # Sequences shorter than min_history produce empty results on both.
    tiny = make_dataset(num_students=2, lengths=(2, 2))
    short_model = make_model("dkt", tiny,
                             min_history=5)
    for legacy_flag in (True, False):
        labels, scores = short_model.predict_dataset(tiny,
                                                     legacy=legacy_flag)
        assert labels.size == 0 and scores.size == 0


@pytest.mark.slow
@pytest.mark.parametrize("encoder", ENCODERS)
def test_large_corpus_parity(encoder):
    """Opt-in (pytest -m slow): parity on a larger, longer corpus."""
    dataset = make_dataset(num_students=24, lengths=(10, 50), seed=9)
    model = make_model(encoder, dataset, dim=16)
    legacy_labels, legacy_scores = model.predict_dataset(dataset,
                                                         legacy=True)
    fast_labels, fast_scores = model.predict_dataset(dataset)
    np.testing.assert_allclose(np.sort(fast_scores),
                               np.sort(legacy_scores), rtol=0, atol=ATOL)
    assert np.array_equal(np.sort(legacy_labels), np.sort(fast_labels))


def test_workers_sweep_is_value_and_order_identical():
    """Chunk-threading only reorders *scheduling*: each chunk computes
    exactly the arithmetic of the sequential sweep into disjoint output
    slots, so scores match bit-for-bit, in the same order."""
    dataset = make_dataset(num_students=10, lengths=(4, 14), seed=5)
    model = make_model("dkt", dataset)
    labels_1, scores_1 = model.predict_dataset(dataset, target_batch=8)
    labels_n, scores_n = model.predict_dataset(dataset, target_batch=8,
                                               workers=4)
    assert np.array_equal(labels_1, labels_n)
    np.testing.assert_allclose(scores_n, scores_1, rtol=0, atol=0)


def test_workers_score_batch_targets_identical():
    from repro.core.multi_target import score_batch_targets
    dataset = make_dataset(num_students=8)
    model = make_model("sakt", dataset)
    sequences = list(dataset)
    base = collate(sequences)
    cols = np.array([len(s) - 1 for s in sequences])
    model.eval()
    with no_grad():
        sequential = score_batch_targets(model, base, cols, target_batch=3)
        threaded = score_batch_targets(model, base, cols, target_batch=3,
                                       workers=3)
    np.testing.assert_allclose(threaded, sequential, rtol=0, atol=0)
