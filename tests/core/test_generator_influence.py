"""Probability generator (Eq. 23-26) and influence computation properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (RCKT, RCKTConfig, build_encoder, build_variants,
                        compute_influences, ResponseProbabilityGenerator)
from repro.data import Interaction, StudentSequence, collate
from repro.tensor import Tensor

RNG = np.random.default_rng(17)


def make_generator(dim=8, encoder="dkt"):
    rng = np.random.default_rng(4)
    enc = build_encoder(encoder, dim, 1, rng)
    return ResponseProbabilityGenerator(10, 5, dim, enc, rng)


def toy_batch(length=6):
    seq = StudentSequence(1)
    for i in range(length):
        seq.append(Interaction((i % 9) + 1, i % 2, ((i % 4) + 1,), i))
    return collate([seq])


class TestGenerator:
    def test_output_shape_and_range(self):
        gen = make_generator()
        batch = toy_batch()
        probs = gen(batch)
        assert probs.shape == (1, 6)
        assert np.all((probs.data > 0) & (probs.data < 1))

    def test_response_variant_changes_probabilities(self):
        gen = make_generator()
        gen.eval()
        batch = toy_batch()
        base = gen(batch).data.copy()
        flipped = batch.responses.copy()
        flipped[0, 0] = 1 - flipped[0, 0]
        out = gen(batch, responses=flipped).data
        assert not np.allclose(out, base)

    def test_masked_category_is_distinct_input(self):
        gen = make_generator()
        gen.eval()
        batch = toy_batch()
        masked = batch.responses.copy()
        masked[0, 2] = 2
        a = gen(batch).data
        b = gen(batch, responses=masked).data
        assert not np.allclose(a, b)

    def test_question_override_changes_only_that_column_input(self):
        gen = make_generator()
        gen.eval()
        batch = toy_batch()
        override = Tensor(RNG.normal(size=(1, 8)))
        out = gen(batch, question_override=override,
                  override_cols=np.array([3])).data
        base = gen(batch).data
        # The overridden column's own probability must change (its e_i is
        # part of the head input).
        assert not np.isclose(out[0, 3], base[0, 3])

    def test_override_requires_cols(self):
        gen = make_generator()
        with pytest.raises(ValueError):
            gen(toy_batch(), question_override=Tensor(np.zeros((1, 8))))


class TestInfluenceProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=2, max_size=8),
           st.integers(0, 10 ** 6))
    def test_score_bounds_any_probabilities(self, responses, seed):
        """Scores stay in [0, 1] for arbitrary generator outputs."""
        responses = np.array([responses + [1]])  # append target
        length = responses.shape[1]
        mask = np.ones((1, length), dtype=bool)
        variants = build_variants(responses, mask, np.array([length - 1]))
        rng = np.random.default_rng(seed)
        probs = {name: Tensor(rng.random((1, length)))
                 for name in ("f_plus", "cf_minus", "f_minus", "cf_plus")}
        influence = compute_influences(probs, variants)
        assert 0.0 <= influence.scores[0] <= 1.0

    def test_no_history_gives_neutral_score(self):
        responses = np.array([[1]])
        mask = np.ones((1, 1), dtype=bool)
        variants = build_variants(responses, mask, np.array([0]))
        probs = {name: Tensor(np.full((1, 1), 0.9))
                 for name in ("f_plus", "cf_minus", "f_minus", "cf_plus")}
        influence = compute_influences(probs, variants)
        assert influence.scores[0] == 0.5

    def test_identical_factual_counterfactual_gives_neutral(self):
        """If interventions change nothing, all influences are zero."""
        responses = np.array([[1, 0, 1]])
        mask = np.ones((1, 3), dtype=bool)
        variants = build_variants(responses, mask, np.array([2]))
        same = Tensor(np.full((1, 3), 0.6))
        probs = {name: same for name in
                 ("f_plus", "cf_minus", "f_minus", "cf_plus")}
        influence = compute_influences(probs, variants)
        assert influence.scores[0] == 0.5
        assert np.all(influence.correct_deltas.data == 0)

    def test_missing_variant_raises(self):
        responses = np.array([[1, 1]])
        mask = np.ones((1, 2), dtype=bool)
        variants = build_variants(responses, mask, np.array([1]))
        with pytest.raises(KeyError):
            compute_influences({"f_plus": Tensor(np.zeros((1, 2)))}, variants)


class TestRCKTEncoders:
    @pytest.mark.parametrize("encoder", ["dkt", "sakt", "akt"])
    def test_all_encoders_produce_valid_scores(self, encoder):
        config = RCKTConfig(encoder=encoder, dim=8, layers=1, epochs=1)
        model = RCKT(10, 5, config)
        batch = toy_batch()
        scores = model.predict_scores(batch, np.array([5]))
        assert 0.0 <= scores[0] <= 1.0
