"""Bidirectional encoder correctness — above all, NO self-leakage.

Eq. 25 requires h_i to exclude position i's own input entirely.  The
perturbation tests here change the input at one position and assert the
encoder output at that position is bit-identical, including through
multiple layers (the subtle case: naive bidirectional stacking leaks).
"""

import numpy as np
import pytest

from repro.core import (BiAKTEncoder, BiDKTEncoder, BiSAKTEncoder,
                        build_encoder, shift_and_combine)
from repro.tensor import Tensor

RNG = np.random.default_rng(31)
DIM = 8
LENGTH = 7


def encoder_factory(name, layers):
    return build_encoder(name, DIM, layers, np.random.default_rng(5), heads=2)


@pytest.mark.parametrize("name", ["dkt", "sakt", "akt"])
@pytest.mark.parametrize("layers", [1, 2])
class TestNoSelfLeakage:
    def test_output_invariant_to_own_input(self, name, layers):
        encoder = encoder_factory(name, layers)
        encoder.eval()
        x = RNG.normal(size=(2, LENGTH, DIM))
        mask = np.ones((2, LENGTH), dtype=bool)
        base = encoder(Tensor(x), mask=mask).data.copy()
        for position in range(LENGTH):
            perturbed = x.copy()
            perturbed[:, position, :] += 13.0
            out = encoder(Tensor(perturbed), mask=mask).data
            assert np.allclose(out[:, position], base[:, position]), \
                f"{name}/{layers}L leaked input {position} into h_{position}"

    def test_other_positions_do_change(self, name, layers):
        """Sanity: the perturbation is visible elsewhere (not a dead net)."""
        encoder = encoder_factory(name, layers)
        encoder.eval()
        x = RNG.normal(size=(1, LENGTH, DIM))
        mask = np.ones((1, LENGTH), dtype=bool)
        base = encoder(Tensor(x), mask=mask).data.copy()
        perturbed = x.copy()
        perturbed[:, 3, :] += 13.0
        out = encoder(Tensor(perturbed), mask=mask).data
        others = [p for p in range(LENGTH) if p != 3]
        assert not np.allclose(out[:, others], base[:, others])


class TestShiftAndCombine:
    def test_boundaries_use_single_direction(self):
        fwd = Tensor(np.arange(12.0).reshape(1, 4, 3))
        bwd = Tensor(100.0 + np.arange(12.0).reshape(1, 4, 3))
        out = shift_and_combine(fwd, bwd).data
        # h_0 = bwd[1] only; h_3 = fwd[2] only.
        assert np.allclose(out[0, 0], bwd.data[0, 1])
        assert np.allclose(out[0, 3], fwd.data[0, 2])

    def test_interior_sums_both(self):
        fwd = Tensor(np.ones((1, 3, 2)))
        bwd = Tensor(2.0 * np.ones((1, 3, 2)))
        out = shift_and_combine(fwd, bwd).data
        assert np.allclose(out[0, 1], 3.0)


class TestDirections:
    def test_bidkt_first_position_sees_future_only(self):
        encoder = BiDKTEncoder(DIM, 1, np.random.default_rng(0))
        encoder.eval()
        x = RNG.normal(size=(1, 5, DIM))
        base = encoder(Tensor(x)).data.copy()
        # Changing the LAST position must affect h_0 (backward path).
        perturbed = x.copy()
        perturbed[0, 4] += 5.0
        assert not np.allclose(encoder(Tensor(perturbed)).data[0, 0],
                               base[0, 0])

    def test_bidkt_last_position_sees_past_only(self):
        encoder = BiDKTEncoder(DIM, 1, np.random.default_rng(0))
        encoder.eval()
        x = RNG.normal(size=(1, 5, DIM))
        base = encoder(Tensor(x)).data.copy()
        perturbed = x.copy()
        perturbed[0, 0] += 5.0
        assert not np.allclose(encoder(Tensor(perturbed)).data[0, 4],
                               base[0, 4])

    def test_attention_mask_respects_padding(self):
        encoder = BiSAKTEncoder(DIM, 1, np.random.default_rng(0), heads=2)
        encoder.eval()
        x = RNG.normal(size=(1, 6, DIM))
        mask = np.array([[True, True, True, True, False, False]])
        base = encoder(Tensor(x), mask=mask).data.copy()
        perturbed = x.copy()
        perturbed[0, 5] += 50.0  # padding position
        out = encoder(Tensor(perturbed), mask=mask).data
        assert np.allclose(out[0, :4], base[0, :4])


class TestFactory:
    def test_builds_each_kind(self):
        assert isinstance(encoder_factory("dkt", 1), BiDKTEncoder)
        assert isinstance(encoder_factory("sakt", 1), BiSAKTEncoder)
        assert isinstance(encoder_factory("akt", 1), BiAKTEncoder)

    def test_akt_is_monotonic_sakt(self):
        akt = encoder_factory("akt", 1)
        assert akt.forward_stack.blocks[0].attention.monotonic

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            build_encoder("gru", DIM, 1, np.random.default_rng(0))

    def test_gradients_flow(self):
        encoder = encoder_factory("dkt", 2)
        x = Tensor(RNG.normal(size=(2, 4, DIM)), requires_grad=True)
        (encoder(x) ** 2).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in encoder.parameters())


@pytest.mark.parametrize("name", ["dkt", "sakt", "akt"])
@pytest.mark.parametrize("layers", [1, 2])
class TestIncrementalForwardStream:
    """The serving step APIs must reproduce the batch forward stream.

    ``new_forward_state`` + ``extend_forward_state`` is the from-scratch
    incremental path; ``forward_stream_with_capture`` +
    ``state_from_capture`` is the vectorized warm-up that resumes it
    mid-sequence.  Both must track ``forward_stream`` to roundoff.
    """

    ATOL = 1e-12

    def test_stepwise_matches_batch(self, name, layers):
        from repro.tensor import no_grad
        encoder = encoder_factory(name, layers)
        encoder.eval()
        x = RNG.normal(size=(3, LENGTH, DIM))
        with no_grad():
            reference = encoder.forward_stream(Tensor(x)).data
            state = encoder.new_forward_state(3)
            stepped = np.stack(
                [encoder.extend_forward_state(state, x[:, t])
                 for t in range(LENGTH)], axis=1)
        np.testing.assert_allclose(stepped, reference, rtol=0,
                                   atol=self.ATOL)
        assert state.length == LENGTH
        assert state.nbytes > 0

    def test_capture_resumes_incrementally(self, name, layers):
        from repro.tensor import no_grad
        encoder = encoder_factory(name, layers)
        encoder.eval()
        x = RNG.normal(size=(2, LENGTH + 1, DIM))
        with no_grad():
            _, capture = encoder.forward_stream_with_capture(
                Tensor(x[:, :LENGTH]))
            state = encoder.state_from_capture(capture, [0, 1], LENGTH)
            extended = encoder.extend_forward_state(state, x[:, LENGTH])
            reference = encoder.forward_stream(Tensor(x)).data
        np.testing.assert_allclose(extended, reference[:, LENGTH],
                                   rtol=0, atol=self.ATOL)
