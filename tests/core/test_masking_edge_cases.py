"""Edge cases for ``build_variants`` / ``VariantSet.stacked`` (Sec. IV-B).

Covers the boundary shapes the multi-target fast path feeds the masking
layer: a target at column 0 (empty history), uniformly correct/incorrect
histories, truncated masks, and the "-mono" ablation — asserting the
retention invariant throughout: MASKED never appears at retained
positions (the monotonicity rule only ever *masks* unreliable responses,
it never touches the retained side).
"""

import numpy as np
import pytest

from repro.core import (COUNTERFACTUAL_VARIANTS, MASKED, VARIANT_ORDER,
                        build_variants)


def variants_for(row, target, mask=None, use_monotonicity=True):
    responses = np.array([row])
    if mask is None:
        mask = np.ones_like(responses, dtype=bool)
    else:
        mask = np.array([mask], dtype=bool)
    return build_variants(responses, mask, np.array([target]),
                          use_monotonicity=use_monotonicity)


class TestTargetAtColumnZero:
    """No history: nothing to retain, nothing to mask."""

    def test_all_variants_differ_only_at_target(self):
        row = [1, 0, 1, 0]
        vs = variants_for(row, 0)
        assert not vs.history_mask.any()
        assert not vs.correct_mask.any()
        assert not vs.incorrect_mask.any()
        for name in VARIANT_ORDER:
            np.testing.assert_array_equal(vs.variants[name][0, 1:],
                                          np.array(row)[1:])
        assert vs.variants["f_plus"][0, 0] == 1
        assert vs.variants["cf_plus"][0, 0] == 1
        assert vs.variants["f_minus"][0, 0] == 0
        assert vs.variants["cf_minus"][0, 0] == 0
        assert vs.variants["factual"][0, 0] == MASKED


class TestUniformHistories:
    def test_all_correct_history(self):
        """CF- masks the whole history, CF+ retains it untouched."""
        vs = variants_for([1, 1, 1, 1], 3)
        assert vs.variants["cf_minus"][0].tolist() == [MASKED] * 3 + [0]
        assert vs.variants["cf_plus"][0].tolist() == [1, 1, 1, 1]
        assert not vs.incorrect_mask.any()

    def test_all_incorrect_history(self):
        vs = variants_for([0, 0, 0, 0], 3)
        assert vs.variants["cf_plus"][0].tolist() == [MASKED] * 3 + [1]
        assert vs.variants["cf_minus"][0].tolist() == [0, 0, 0, 0]
        assert not vs.correct_mask.any()


class TestRetentionInvariant:
    """MASKED never appears at retained positions."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("use_monotonicity", [True, False])
    def test_random_batches(self, seed, use_monotonicity):
        rng = np.random.default_rng(seed)
        responses = rng.integers(0, 2, size=(6, 10))
        mask = np.ones((6, 10), dtype=bool)
        targets = rng.integers(1, 10, size=6)
        vs = build_variants(responses, mask, targets,
                            use_monotonicity=use_monotonicity)
        # CF- retains the incorrect history; CF+ retains the correct one.
        assert not (vs.variants["cf_minus"][vs.incorrect_mask]
                    == MASKED).any()
        assert not (vs.variants["cf_plus"][vs.correct_mask] == MASKED).any()
        # Retained positions keep their factual values verbatim.
        np.testing.assert_array_equal(
            vs.variants["cf_minus"][vs.incorrect_mask],
            responses[vs.incorrect_mask])
        np.testing.assert_array_equal(
            vs.variants["cf_plus"][vs.correct_mask],
            responses[vs.correct_mask])
        # F+/F- never mask anything anywhere.
        for name in ("f_plus", "f_minus"):
            assert not (vs.variants[name] == MASKED).any()

    def test_mono_ablation_never_masks_history(self):
        """-mono: counterfactual rows keep every other response factual."""
        rng = np.random.default_rng(1)
        responses = rng.integers(0, 2, size=(4, 8))
        vs = build_variants(responses, np.ones((4, 8), dtype=bool),
                            np.array([7, 3, 5, 1]), use_monotonicity=False)
        history = vs.history_mask
        for name in COUNTERFACTUAL_VARIANTS:
            np.testing.assert_array_equal(vs.variants[name][history],
                                          responses[history])


class TestTruncatedMasks:
    """The fast path passes masks truncated after the target."""

    def test_positions_after_target_excluded_from_history(self):
        row = [1, 0, 1, 1, 0, 1]
        mask = [True, True, True, True, False, False]
        vs = variants_for(row, 3, mask=mask)
        assert vs.history_mask[0].tolist() == [True, True, True, False,
                                               False, False]
        # Monotonicity masking never reaches past the target.
        assert (vs.variants["cf_minus"][0, 4:] == np.array(row)[4:]).all()

    def test_target_must_be_real(self):
        with pytest.raises(ValueError, match="real response"):
            variants_for([1, 0, 1], 2, mask=[True, True, False])

    def test_target_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            variants_for([1, 0, 1], 3)


class TestStacked:
    def test_stacked_concatenates_in_name_order(self):
        vs = variants_for([1, 0, 1, 1], 3)
        stacked = vs.stacked(COUNTERFACTUAL_VARIANTS)
        assert stacked.shape == (len(COUNTERFACTUAL_VARIANTS), 4)
        for index, name in enumerate(COUNTERFACTUAL_VARIANTS):
            np.testing.assert_array_equal(stacked[index],
                                          vs.variants[name][0])
