"""Counterfactual optimization (Eq. 16-17) and joint BCE (Eq. 27-28)."""

import numpy as np
import pytest

from repro.core import (build_variants, compute_influences,
                        counterfactual_loss, joint_bce_losses)
from repro.tensor import Tensor


def influence_from(delta_grid_correct, delta_grid_incorrect, responses):
    """Build an InfluenceComputation from hand-set per-position deltas."""
    responses = np.asarray(responses)
    batch, length = responses.shape
    mask = np.ones((batch, length), dtype=bool)
    targets = np.full(batch, length - 1)
    variants = build_variants(responses, mask, targets)
    # Craft probability grids that realize the requested deltas:
    # correct positions: f_plus - cf_minus = delta; incorrect: cf_plus - f_minus.
    f_plus = np.full((batch, length), 0.5) + np.asarray(delta_grid_correct) / 2
    cf_minus = np.full((batch, length), 0.5) - np.asarray(delta_grid_correct) / 2
    cf_plus = np.full((batch, length), 0.5) + np.asarray(delta_grid_incorrect) / 2
    f_minus = np.full((batch, length), 0.5) - np.asarray(delta_grid_incorrect) / 2
    probs = {"f_plus": Tensor(f_plus), "cf_minus": Tensor(cf_minus),
             "f_minus": Tensor(f_minus), "cf_plus": Tensor(cf_plus)}
    return compute_influences(probs, variants)


class TestCounterfactualLoss:
    def test_hand_computed_value(self):
        """One row: responses [1, 0, target=1]; Δ+=0.4, Δ-=0.1, t=2.

        L = -log( (-1)^1 * (Δ- - Δ+) / (2t) + 1/2 ) = -log(0.575).
        """
        correct_d = [[0.4, 0.0, 0.0]]
        incorrect_d = [[0.0, 0.1, 0.0]]
        influence = influence_from(correct_d, incorrect_d, [[1, 0, 1]])
        loss = counterfactual_loss(influence, np.array([1]),
                                   use_constraint=False)
        expected = -np.log((0.4 - 0.1) / 4.0 + 0.5)
        assert np.isclose(loss.item(), expected)

    def test_label_flips_sign(self):
        """The same influences are a *good* outcome for label 0."""
        correct_d = [[0.4, 0.0, 0.0]]
        incorrect_d = [[0.0, 0.1, 0.0]]
        influence = influence_from(correct_d, incorrect_d, [[1, 0, 0]])
        loss = counterfactual_loss(influence, np.array([0]),
                                   use_constraint=False)
        expected = -np.log((0.1 - 0.4) / 4.0 + 0.5)
        assert np.isclose(loss.item(), expected)

    def test_aligned_gap_lowers_loss(self):
        small = influence_from([[0.1, 0.0, 0.0]], [[0.0, 0.0, 0.0]], [[1, 0, 1]])
        large = influence_from([[0.8, 0.0, 0.0]], [[0.0, 0.0, 0.0]], [[1, 0, 1]])
        loss_small = counterfactual_loss(small, np.array([1]),
                                         use_constraint=False).item()
        loss_large = counterfactual_loss(large, np.array([1]),
                                         use_constraint=False).item()
        assert loss_large < loss_small

    def test_constraint_punishes_negative_influence(self):
        influence = influence_from([[-0.3, 0.0, 0.0]], [[0.0, 0.2, 0.0]],
                                   [[1, 0, 1]])
        with_constraint = counterfactual_loss(influence, np.array([1]),
                                              alpha=1.0, use_constraint=True)
        without = counterfactual_loss(influence, np.array([1]),
                                      use_constraint=False)
        assert np.isclose(with_constraint.item() - without.item(), 0.3)

    def test_constraint_ignores_positive_influences(self):
        influence = influence_from([[0.3, 0.0, 0.0]], [[0.0, 0.2, 0.0]],
                                   [[1, 0, 1]])
        a = counterfactual_loss(influence, np.array([1]), use_constraint=True)
        b = counterfactual_loss(influence, np.array([1]), use_constraint=False)
        assert np.isclose(a.item(), b.item())

    def test_alpha_scales_constraint(self):
        influence = influence_from([[-0.4, 0.0, 0.0]], [[0.0, 0.0, 0.0]],
                                   [[1, 0, 1]])
        base = counterfactual_loss(influence, np.array([1]),
                                   use_constraint=False).item()
        doubled = counterfactual_loss(influence, np.array([1]), alpha=2.0,
                                      use_constraint=True).item()
        assert np.isclose(doubled - base, 0.8)

    def test_gradients_flow(self):
        raw = Tensor(np.full((1, 3), 0.6), requires_grad=True)
        responses = np.array([[1, 0, 1]])
        mask = np.ones((1, 3), dtype=bool)
        variants = build_variants(responses, mask, np.array([2]))
        probs = {"f_plus": raw, "cf_minus": raw * 0.5,
                 "f_minus": raw * 0.4, "cf_plus": raw * 0.9}
        influence = compute_influences(probs, variants)
        loss = counterfactual_loss(influence, np.array([1]))
        loss.backward()
        assert raw.grad is not None


class TestJointBCE:
    def test_returns_three_losses(self):
        probs = {name: Tensor(np.full((2, 4), 0.7))
                 for name in ("factual", "m_plus", "m_minus")}
        responses = np.ones((2, 4), dtype=np.int64)
        history = np.ones((2, 4), dtype=bool)
        losses = joint_bce_losses(probs, responses, history)
        assert set(losses) == {"factual", "m_plus", "m_minus"}
        for loss in losses.values():
            assert np.isclose(loss.item(), -np.log(0.7))

    def test_history_mask_excludes_positions(self):
        probs = {name: Tensor(np.array([[0.9, 0.1]]))
                 for name in ("factual", "m_plus", "m_minus")}
        responses = np.array([[1, 1]])
        history = np.array([[True, False]])  # only the first counts
        losses = joint_bce_losses(probs, responses, history)
        assert np.isclose(losses["factual"].item(), -np.log(0.9))

    def test_missing_variant_raises(self):
        with pytest.raises(KeyError):
            joint_bce_losses({"factual": Tensor(np.array([[0.5]]))},
                             np.array([[1]]), np.array([[True]]))
