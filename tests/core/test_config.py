"""RCKT configuration and the Table III registry."""

import pytest

from repro.core import (ENCODERS, PAPER_HYPERPARAMETERS, RCKTConfig,
                        paper_config)


class TestRCKTConfig:
    def test_defaults_valid(self):
        config = RCKTConfig()
        assert config.encoder in ENCODERS

    def test_unknown_encoder_rejected(self):
        with pytest.raises(ValueError):
            RCKTConfig(encoder="lstm")

    def test_with_overrides(self):
        config = RCKTConfig().with_overrides(dim=64, lr=5e-4)
        assert config.dim == 64 and config.lr == 5e-4

    def test_joint_ablation_zeroes_lambda(self):
        config = RCKTConfig(use_joint=False, lambda_balance=0.3)
        assert config.lambda_balance == 0.0


class TestPaperRegistry:
    def test_all_twelve_combinations_present(self):
        datasets = {"assist09", "assist12", "slepemapy", "eedi"}
        encoders = {"dkt", "sakt", "akt"}
        assert set(PAPER_HYPERPARAMETERS) == {(d, e) for d in datasets
                                              for e in encoders}

    def test_paper_config_matches_table3_assist09_dkt(self):
        config = paper_config("assist09", "dkt")
        # Table III: {1e-3, 0.1, 1e-5, 0.3, 2}
        assert config.lr == 1e-3
        assert config.lambda_balance == 0.1
        assert config.weight_decay == 1e-5
        assert config.dropout == 0.3
        assert config.layers == 2

    def test_paper_config_accepts_overrides(self):
        config = paper_config("eedi", "akt", dim=16, epochs=2)
        assert config.dim == 16 and config.epochs == 2
        assert config.lr == 5e-4  # Table III value kept

    def test_unknown_combination_raises(self):
        with pytest.raises(KeyError):
            paper_config("assist09", "gru")
